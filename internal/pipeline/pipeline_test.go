package pipeline

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

func TestReaderDeliversFramesUntilEOF(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() {
		transport.WriteTaggedFrame(c1, 7, []byte("a"))
		transport.WriteTaggedFrame(c1, 9, []byte("bc"))
		c1.Close()
	}()
	var tags []uint32
	var payloads []string
	r := &Reader{Conn: c2, Handle: func(tag uint32, frame []byte) error {
		tags = append(tags, tag)
		payloads = append(payloads, string(frame))
		return nil
	}}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(tags) != 2 || tags[0] != 7 || tags[1] != 9 || payloads[0] != "a" || payloads[1] != "bc" {
		t.Fatalf("got tags %v payloads %v", tags, payloads)
	}
}

func TestReaderIdleTimeout(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	// Send one frame, then stall forever.
	go transport.WriteTaggedFrame(c1, 1, []byte("x"))
	got := 0
	r := &Reader{Conn: c2, IdleTimeout: 50 * time.Millisecond, Handle: func(uint32, []byte) error {
		got++
		return nil
	}}
	start := time.Now()
	err := r.Run()
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("want ErrIdleTimeout, got %v", err)
	}
	if got != 1 {
		t.Fatalf("want 1 frame before the stall, got %d", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("idle timeout took %v", elapsed)
	}
}

func TestReaderHandleErrorStopsLoop(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		transport.WriteTaggedFrame(c1, 1, []byte("x"))
		transport.WriteTaggedFrame(c1, 2, []byte("y"))
	}()
	sentinel := errors.New("stop")
	r := &Reader{Conn: c2, Handle: func(uint32, []byte) error { return sentinel }}
	if err := r.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

// MaxFrame makes an oversized length prefix a loop-stopping error
// wrapping transport.ErrFrameTooLarge, without reading the payload.
func TestReaderMaxFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		transport.WriteTaggedFrame(c1, 1, []byte("fits"))
		transport.WriteTaggedFrame(c1, 2, make([]byte, 100))
	}()
	var got int
	r := &Reader{Conn: c2, MaxFrame: 50, Handle: func(uint32, []byte) error {
		got++
		return nil
	}}
	err := r.Run()
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if got != 1 {
		t.Fatalf("want 1 frame before the oversized one, got %d", got)
	}
}

// With Reuse set, frames arrive in one recycled buffer (Handle must
// copy); with R set, frames come off the wrapped reader while the
// deadline still guards the Conn.
func TestReaderReuseAndWrappedReader(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		transport.WriteTaggedFrame(c1, 1, []byte("first"))
		transport.WriteTaggedFrame(c1, 2, []byte("second"))
		c1.Close()
	}()
	var copies []string
	var raw [][]byte
	r := &Reader{Conn: c2, R: bufio.NewReader(c2), Reuse: true, Handle: func(_ uint32, frame []byte) error {
		copies = append(copies, string(frame))
		raw = append(raw, frame)
		return nil
	}}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(copies) != 2 || copies[0] != "first" || copies[1] != "second" {
		t.Fatalf("payload copies = %v", copies)
	}
	// The reuse contract: both Handle calls saw the same underlying
	// buffer, so the retained raw slice was clobbered by frame two.
	if string(raw[0]) != "secon" {
		t.Fatalf("expected frame 1's retained slice to be recycled, got %q", raw[0])
	}
}

func TestBatcherFlushesPermutedFullBatches(t *testing.T) {
	var batches [][][]byte
	b := &Batcher{Size: 4, Rand: rng.New(3), Flush: func(batch [][]byte) {
		batches = append(batches, batch)
	}}
	for i := 0; i < 10; i++ {
		b.Add([]byte{byte(i)})
	}
	if len(batches) != 2 {
		t.Fatalf("want 2 full batches, got %d", len(batches))
	}
	if b.Len() != 2 {
		t.Fatalf("want 2 buffered, got %d", b.Len())
	}
	b.FlushNow()
	if len(batches) != 3 || b.Len() != 0 {
		t.Fatalf("partial flush: %d batches, %d buffered", len(batches), b.Len())
	}
	// Every item must come out exactly once.
	seen := map[byte]bool{}
	total := 0
	for _, batch := range batches {
		for _, it := range batch {
			seen[it[0]] = true
			total++
		}
	}
	if total != 10 || len(seen) != 10 {
		t.Fatalf("lost or duplicated items: total=%d distinct=%d", total, len(seen))
	}
	// The permutation stream must match a direct Shuffle of the same
	// arrival order (the service's determinism contract).
	want := [][]byte{{0}, {1}, {2}, {3}}
	rng.New(3).Shuffle(4, func(i, j int) { want[i], want[j] = want[j], want[i] })
	for i := range want {
		if batches[0][i][0] != want[i][0] {
			t.Fatalf("batch 0 permutation diverged at %d: got %d want %d", i, batches[0][i][0], want[i][0])
		}
	}
}

func TestBatcherFlushNowEmptyIsNoop(t *testing.T) {
	calls := 0
	b := &Batcher{Size: 4, Flush: func([][]byte) { calls++ }}
	b.FlushNow()
	if calls != 0 {
		t.Fatalf("empty FlushNow called Flush %d times", calls)
	}
	b.Add([]byte{1})
	b.Reset()
	b.FlushNow()
	if calls != 0 || b.Len() != 0 {
		t.Fatalf("Reset did not drop the buffer (calls=%d len=%d)", calls, b.Len())
	}
}

func TestPoolRunsAndJoins(t *testing.T) {
	var p Pool
	results := make([]int, 8)
	p.Go(8, func(i int) { results[i] = i + 1 })
	p.Wait()
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("worker %d did not run", i)
		}
	}
}

func TestDisconnectedClassifiesErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"net-closed", net.ErrClosed, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"epipe", syscall.EPIPE, true},
		{"wrapped-reset", fmt.Errorf("read frame: %w", syscall.ECONNRESET), true},
		{"op-error", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"idle-timeout", ErrIdleTimeout, false},
		{"arbitrary", errors.New("bad frame"), false},
	}
	for _, tc := range cases {
		if got := Disconnected(tc.err); got != tc.want {
			t.Errorf("Disconnected(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
