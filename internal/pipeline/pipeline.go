// Package pipeline provides the composable stage primitives the
// networked tiers are assembled from. The streaming service
// (internal/service) and the role-separated PEOS cluster nodes
// (internal/cluster) share the same stage vocabulary:
//
//	ingest   — Reader: one framed-report loop per connection, with an
//	           idle deadline so a stalled peer can never pin a
//	           goroutine (and, transitively, a graceful drain) forever.
//	batch    — Batcher: accumulate items to a size bound.
//	shuffle  — Batcher again: each full batch is permuted before the
//	           flush callback sees it, so downstream stages only ever
//	           observe reports in shuffled order.
//	aggregate/forward — the stage behind the flush callback: the
//	           service's decrypt/aggregate worker Pool, or a cluster
//	           node forwarding share vectors to the next hop.
//
// The primitives deliberately carry no protocol knowledge: framing is
// transport's, report semantics are the caller's. What they fix is the
// concurrency shape — deadline-guarded reads, permute-before-flush,
// counted worker fan-out — so every tier gets the same hardening.
package pipeline

import (
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// ErrIdleTimeout is returned by Reader.Run when the connection stayed
// silent past the configured idle deadline. The caller decides policy:
// the service closes the connection and counts it, a cluster node
// fails the collection.
var ErrIdleTimeout = errors.New("pipeline: connection idle past deadline")

// Disconnected reports whether err is the kind of failure a remote
// peer's disappearance produces — EOF mid-frame, a connection reset, a
// broken pipe, or a locally closed connection — as opposed to a
// protocol violation by a live peer or an idle/deadline timeout. The
// self-healing tiers classify errors with it: a disconnect means "drop
// or redial this one connection", never "fail the node".
func Disconnected(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// Reader is the ingest stage: it reads tagged frames off one
// connection until EOF and hands each to Handle. It is the shared
// connection-reader of the service's readConn and the cluster nodes'
// ingest loops.
type Reader struct {
	// Conn is the connection to read. Reader never closes it.
	Conn net.Conn
	// R, when non-nil, is the stream frames are read from (Conn still
	// carries the read deadlines). Callers that wrap Conn in a buffered
	// reader set it; nil reads Conn directly.
	R io.Reader
	// IdleTimeout bounds the silence between frames; 0 means no bound.
	// When the peer sends nothing for this long, Run returns
	// ErrIdleTimeout instead of blocking forever.
	IdleTimeout time.Duration
	// MaxFrame caps the length prefix of a single frame; a frame
	// claiming more returns an error wrapping transport.ErrFrameTooLarge
	// before any payload byte is read. Zero falls back to
	// transport.MaxFrameSize (the 1 GiB defensive ceiling).
	MaxFrame int
	// Reuse, when true, reads every frame into one buffer owned by Run:
	// the payload passed to Handle is only valid until Handle returns,
	// so Handle must copy whatever it keeps. False (the default) hands
	// Handle a fresh allocation per frame that it may retain.
	Reuse bool
	// Handle is called with each frame's tag and payload (see Reuse for
	// the payload's lifetime). A non-nil return stops the loop and is
	// returned by Run verbatim (use a sentinel to distinguish "stop
	// wanted" from failure).
	Handle func(tag uint32, frame []byte) error
}

// Run reads frames until EOF (returning nil), an idle timeout
// (returning ErrIdleTimeout), a transport error, or a Handle error.
func (r *Reader) Run() error {
	src := r.R
	if src == nil {
		src = r.Conn
	}
	var buf []byte
	for {
		if r.IdleTimeout > 0 {
			if err := r.Conn.SetReadDeadline(time.Now().Add(r.IdleTimeout)); err != nil {
				return err
			}
		}
		tag, frame, err := transport.ReadTaggedFrameReuse(src, r.MaxFrame, buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return ErrIdleTimeout
			}
			return err
		}
		if r.Reuse {
			buf = frame
		}
		if err := r.Handle(tag, frame); err != nil {
			return err
		}
	}
}

// Batcher is the batch + shuffle stage: it accumulates byte-slice
// items and, once Size is reached (or FlushNow is called), permutes
// the batch with Rand and hands a freshly-allocated copy to Flush.
// Permute-before-flush is the stage's invariant: no downstream stage
// ever sees arrival order inside a batch. A Batcher is not safe for
// concurrent use — it belongs to the single shuffler goroutine of its
// tier.
type Batcher struct {
	// Size is the flush threshold; Add flushes when the buffer reaches
	// it. It must be > 0.
	Size int
	// Rand drives the batch permutations (one Shuffle call per flushed
	// batch). A nil Rand flushes in arrival order — only tests and
	// forward-only stages should do that.
	Rand *rng.Rand
	// Flush receives each permuted batch. The slice is owned by the
	// callee.
	Flush func(batch [][]byte)

	buf [][]byte
}

// Add appends one item, flushing if the buffer reaches Size.
func (b *Batcher) Add(item []byte) {
	if b.buf == nil {
		b.buf = make([][]byte, 0, b.Size)
	}
	b.buf = append(b.buf, item)
	if len(b.buf) >= b.Size {
		b.FlushNow()
	}
}

// Len returns the number of buffered (unflushed) items.
func (b *Batcher) Len() int { return len(b.buf) }

// SetRand switches the permutation stream (the service does this at
// every epoch rotation so each epoch shuffles from its own substream).
func (b *Batcher) SetRand(r *rng.Rand) { b.Rand = r }

// FlushNow flushes the buffered partial batch, if any: permute, copy,
// hand off, reset. The epoch cut and the graceful drain both end with
// one FlushNow.
func (b *Batcher) FlushNow() {
	if len(b.buf) == 0 {
		return
	}
	if b.Rand != nil {
		b.Rand.Shuffle(len(b.buf), func(i, j int) {
			b.buf[i], b.buf[j] = b.buf[j], b.buf[i]
		})
	}
	batch := make([][]byte, len(b.buf))
	copy(batch, b.buf)
	b.buf = b.buf[:0]
	b.Flush(batch)
}

// Reset drops any buffered items without flushing them (abort path).
func (b *Batcher) Reset() { b.buf = b.buf[:0] }

// Pool is the aggregate stage's worker fan-out: n copies of one loop,
// joined by Wait. It exists so every tier counts its workers the same
// way instead of hand-rolling a WaitGroup per stage.
type Pool struct {
	wg sync.WaitGroup
}

// Go starts fn(i) for i in [0, n) as pool goroutines.
func (p *Pool) Go(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func(i int) {
			defer p.wg.Done()
			fn(i)
		}(i)
	}
}

// Wait blocks until every goroutine started by Go has returned.
func (p *Pool) Wait() { p.wg.Wait() }
