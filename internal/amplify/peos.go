package amplify

import (
	"errors"
	"fmt"
	"math"
)

// PEOS privacy and utility analysis (§VI-B and §VI-C).

// PEOSGuarantees collects the three privacy levels of a PEOS deployment
// against the three adversaries of §V-A.
type PEOSGuarantees struct {
	// EpsC bounds the view of the server alone (Adv).
	EpsC float64
	// EpsS bounds the view of the server colluding with all other
	// users (Adv_u); only the n_r fake reports protect the victim.
	EpsS float64
	// EpsL is the local randomizer's budget, the only protection left
	// against the server colluding with > floor(r/2) shufflers (Adv_a).
	EpsL float64
}

// PEOSEpsilons evaluates Corollary 8 (outputSpace = d' of SOLH) or
// Corollary 9 (outputSpace = d for GRR): with n users running an
// epsL-LDP oracle and nr uniform fake reports,
//
//	epsS = sqrt(14 ln(2/delta) * outputSpace / nr)
//	epsC = sqrt(14 ln(2/delta) / ((n-1)/(e^epsL+outputSpace-1) + nr/outputSpace))
func PEOSEpsilons(epsL float64, outputSpace, n, nr int, delta float64) PEOSGuarantees {
	validate(n, delta)
	if outputSpace < 2 {
		panic("amplify: output space must be >= 2")
	}
	if nr <= 0 {
		panic("amplify: PEOS needs nr > 0 fake reports")
	}
	L := 14 * math.Log(2/delta)
	os := float64(outputSpace)
	epsS := math.Sqrt(L * os / float64(nr))
	blanket := float64(n-1)/(math.Exp(epsL)+os-1) + float64(nr)/os
	epsC := math.Sqrt(L / blanket)
	return PEOSGuarantees{EpsC: epsC, EpsS: epsS, EpsL: epsL}
}

// PEOSOptimalDPrime is the §VI-C optimum: with a = 14 ln(2/delta)/epsC^2
// and b = n-1, the variance-minimizing hashed domain is
// d' = ((b + nr)/a + 2) / 3, clamped to [2, maxD].
//
// (The paper's inline text prints "n-1-nr"; the derivation in the same
// paragraph — maximize (d' - (b+nr)/a)^2 (d'-1) — yields b+nr. See
// DESIGN.md §3.)
func PEOSOptimalDPrime(epsC float64, n, nr, maxD int, delta float64) int {
	validate(n, delta)
	a := 14 * math.Log(2/delta) / (epsC * epsC)
	b := float64(n - 1)
	dPrime := int(math.Floor(((b+float64(nr))/a + 2) / 3))
	if dPrime < 2 {
		dPrime = 2
	}
	if maxD >= 2 && dPrime > maxD {
		dPrime = maxD
	}
	return dPrime
}

// PEOSLocalEpsilon inverts Corollary 8/9 for epsL: given the target
// epsC, the output-space size, and nr fakes,
//
//	e^epsL + outputSpace - 1 = (n-1) / (a - nr/outputSpace) =: m
//
// with a = 14 ln(2/delta)/epsC^2. Errors when the fakes alone already
// exceed the budget (a <= nr/outputSpace) or no positive epsL exists.
func PEOSLocalEpsilon(epsC float64, outputSpace, n, nr int, delta float64) (epsL, m float64, err error) {
	validate(n, delta)
	if outputSpace < 2 {
		return 0, 0, errors.New("amplify: output space must be >= 2")
	}
	a := 14 * math.Log(2/delta) / (epsC * epsC)
	denom := a - float64(nr)/float64(outputSpace)
	if denom <= 0 {
		return 0, 0, fmt.Errorf("amplify: nr=%d fakes already exceed epsC=%.3f", nr, epsC)
	}
	m = float64(n-1) / denom
	eL := m - float64(outputSpace) + 1
	if eL <= 1 {
		return 0, m, fmt.Errorf("%w: m=%.3f <= outputSpace=%d", ErrNoAmplification, m, outputSpace)
	}
	return math.Log(eL), m, nil
}

// PEOSVariance is the §VI-C utility: Var[f'] = (n+nr) m^2 /
// (n^2 (m-d')^2 (d'-1)) for SOLH (outputSpace = d'), and the GRR
// analogue (n+nr)(m-1)/(n^2 (m-d)^2) via Proposition 4's form.
// grr selects which estimator's variance shape to use.
func PEOSVariance(m float64, outputSpace, n, nr int, grr bool) (float64, error) {
	if outputSpace < 2 {
		return 0, errors.New("amplify: output space must be >= 2")
	}
	md := m - float64(outputSpace)
	if md <= 0 {
		return 0, fmt.Errorf("%w: m=%.3f <= outputSpace=%d", ErrNoAmplification, m, outputSpace)
	}
	scale := float64(n+nr) / (float64(n) * float64(n))
	if grr {
		return scale * (m - 1) / (md * md), nil
	}
	return scale * m * m / (md * md * float64(outputSpace-1)), nil
}
