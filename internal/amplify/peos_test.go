package amplify

import (
	"math"
	"testing"
)

func TestPEOSEpsilonsFormulas(t *testing.T) {
	// Corollary 8 hand check.
	epsL, dPrime, nr := 1.0, 10, 5000
	L := 14 * math.Log(2/testDelta)
	g := PEOSEpsilons(epsL, dPrime, testN, nr, testDelta)
	wantS := math.Sqrt(L * 10 / 5000)
	if math.Abs(g.EpsS-wantS) > 1e-12 {
		t.Fatalf("epsS = %v, want %v", g.EpsS, wantS)
	}
	blanket := float64(testN-1)/(math.E+9) + 500
	wantC := math.Sqrt(L / blanket)
	if math.Abs(g.EpsC-wantC) > 1e-12 {
		t.Fatalf("epsC = %v, want %v", g.EpsC, wantC)
	}
	if g.EpsL != epsL {
		t.Fatalf("epsL = %v", g.EpsL)
	}
}

func TestPEOSFakesImproveEpsC(t *testing.T) {
	// More fakes -> smaller epsC (more blanket noise), and epsC with
	// fakes is below the plain shuffle bound.
	plain := CentralEpsilonSOLH(1, 10, testN, testDelta)
	withFakes := PEOSEpsilons(1, 10, testN, 100000, testDelta)
	if withFakes.EpsC >= plain {
		t.Fatalf("fakes did not amplify: %v >= %v", withFakes.EpsC, plain)
	}
	fewer := PEOSEpsilons(1, 10, testN, 1000, testDelta)
	if withFakes.EpsC >= fewer.EpsC {
		t.Fatal("more fakes should give smaller epsC")
	}
	// epsS depends only on the fakes; more fakes -> smaller epsS.
	if withFakes.EpsS >= fewer.EpsS {
		t.Fatal("more fakes should give smaller epsS")
	}
}

func TestPEOSLocalEpsilonRoundTrip(t *testing.T) {
	// epsL -> (epsC with fakes) -> epsL.
	epsL, dPrime, nr := 2.0, 50, 20000
	g := PEOSEpsilons(epsL, dPrime, testN, nr, testDelta)
	got, m, err := PEOSLocalEpsilon(g.EpsC, dPrime, testN, nr, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-epsL) > 1e-9 {
		t.Fatalf("roundtrip gave %v, want %v", got, epsL)
	}
	wantM := math.Exp(epsL) + float64(dPrime) - 1
	if math.Abs(m-wantM) > 1e-6 {
		t.Fatalf("m = %v, want %v", m, wantM)
	}
}

func TestPEOSLocalEpsilonOverblanketed(t *testing.T) {
	// If the fakes alone push epsC below target, no epsL exists.
	_, _, err := PEOSLocalEpsilon(5, 2, testN, testN*10, testDelta)
	if err == nil {
		t.Fatal("expected failure when fakes exceed the budget")
	}
}

func TestPEOSOptimalDPrimeDerivation(t *testing.T) {
	// The chosen d' must (locally) minimize PEOSVariance at fixed
	// epsC and nr, confirming the derivation in DESIGN.md §3.
	epsC, nr := 0.8, 50000
	dStar := PEOSOptimalDPrime(epsC, testN, nr, 1<<30, testDelta)
	varAt := func(dp int) float64 {
		_, m, err := PEOSLocalEpsilon(epsC, dp, testN, nr, testDelta)
		if err != nil {
			return math.Inf(1)
		}
		v, err := PEOSVariance(m, dp, testN, nr, false)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	vStar := varAt(dStar)
	if math.IsInf(vStar, 1) {
		t.Fatalf("optimal d'=%d infeasible", dStar)
	}
	for _, dp := range []int{dStar - 1, dStar + 1, dStar - 10, dStar + 10, dStar / 2, dStar * 2} {
		if dp < 2 {
			continue
		}
		if v := varAt(dp); v < vStar*0.999 {
			t.Errorf("d'=%d (var %.4e) beats chosen %d (var %.4e)", dp, v, dStar, vStar)
		}
	}
}

func TestPEOSOptimalDPrimeSmallerThanPlain(t *testing.T) {
	// §VI-C: "introducing nr will reduce the optimal d'" — wait, the
	// derived formula grows with nr; what shrinks is the optimal d'
	// at the *same* m because part of the blanket now comes free.
	// We verify the formula against brute force instead (above) and
	// here only that the function respects its clamps.
	if got := PEOSOptimalDPrime(1, testN, 1, 10, testDelta); got != 10 {
		t.Fatalf("clamp to maxD failed: %d", got)
	}
	if got := PEOSOptimalDPrime(1e-6, 2, 1, 1000, testDelta); got != 2 {
		t.Fatalf("clamp to 2 failed: %d", got)
	}
}

func TestPEOSVarianceGRRvsSOLHShape(t *testing.T) {
	// At the SAME output-space size GRR keeps more information than
	// hashing, so its variance is lower...
	m := 5000.0
	vsSame, err := PEOSVariance(m, 500, testN, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	vgSame, err := PEOSVariance(m, 500, testN, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	if vgSame >= vsSame {
		t.Fatalf("GRR (%v) should beat SOLH (%v) at equal output space", vgSame, vsSame)
	}
	// ... but GRR is pinned to outputSpace = d while SOLH can choose a
	// small d', which is where SOLH wins (§IV-B3) — here at d = 42178
	// with m = 50000.
	m = 50000
	d := 42178
	vg, err := PEOSVariance(m, d, testN, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	dPrime := OptimalDPrime(m, d)
	vs, err := PEOSVariance(m, dPrime, testN, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if vs >= vg {
		t.Fatalf("SOLH at d'=%d (%v) should beat GRR at d=%d (%v)", dPrime, vs, d, vg)
	}
}

func TestPEOSVarianceErrors(t *testing.T) {
	if _, err := PEOSVariance(10, 20, testN, 10, false); err == nil {
		t.Fatal("expected error for m <= outputSpace")
	}
	if _, err := PEOSVariance(10, 1, testN, 10, false); err == nil {
		t.Fatal("expected error for outputSpace < 2")
	}
}

func TestPlanPEOSFeasibleAndOptimalish(t *testing.T) {
	rq := Requirements{
		Eps1: 0.5, Eps2: 2, Eps3: 4,
		D: testD, N: testN, Delta: testDelta,
	}
	plan, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	// All three budgets respected.
	if plan.Achieved.EpsC > rq.Eps1*1.0001 {
		t.Errorf("epsC %v exceeds %v", plan.Achieved.EpsC, rq.Eps1)
	}
	if plan.Achieved.EpsS > rq.Eps2*1.0001 {
		t.Errorf("epsS %v exceeds %v", plan.Achieved.EpsS, rq.Eps2)
	}
	if plan.EpsL > rq.Eps3*1.0001 {
		t.Errorf("epsL %v exceeds %v", plan.EpsL, rq.Eps3)
	}
	if plan.NR <= 0 {
		t.Error("plan has no fake reports")
	}
	if plan.Variance <= 0 || math.IsInf(plan.Variance, 0) {
		t.Errorf("variance = %v", plan.Variance)
	}
	// At d=915 with a generous local budget, SOLH should be chosen.
	if plan.UseGRR {
		t.Error("expected SOLH to win at d=915")
	}
	if plan.String() == "" {
		t.Error("empty String()")
	}
}

func TestPlanContinual(t *testing.T) {
	rq := Requirements{
		Eps1: 2, Eps2: 8, Eps3: 16,
		D: testD, N: testN, Delta: 1e-6,
	}
	// One epoch is exactly the one-shot plan.
	single, per1, err := PlanContinual(rq, 1)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	if single.Variance != oneShot.Variance || per1.Eps != rq.Eps1 {
		t.Fatalf("1-epoch plan (var %v, per eps %v) differs from one-shot (var %v, eps %v)",
			single.Variance, per1.Eps, oneShot.Variance, rq.Eps1)
	}
	// More epochs: less budget per epoch, more variance per epoch; the
	// per-epoch guarantee must fit the total under some composition and
	// never fall below the even basic split.
	prevVar := single.Variance
	for _, epochs := range []int{4, 16, 64} {
		plan, per, err := PlanContinual(rq, epochs)
		if err != nil {
			t.Fatalf("epochs=%d: %v", epochs, err)
		}
		if plan.Variance <= prevVar {
			t.Fatalf("epochs=%d: variance %v did not grow from %v", epochs, plan.Variance, prevVar)
		}
		prevVar = plan.Variance
		if per.Eps < rq.Eps1/float64(epochs)*(1-1e-9) {
			t.Fatalf("epochs=%d: per-epoch eps %v below the even split %v", epochs, per.Eps, rq.Eps1/float64(epochs))
		}
		if plan.Achieved.EpsC > per.Eps*1.0001 {
			t.Fatalf("epochs=%d: plan epsC %v exceeds the per-epoch budget %v", epochs, plan.Achieved.EpsC, per.Eps)
		}
	}
	// At many epochs the advanced split must beat the basic one: each
	// epoch gets strictly more than total/epochs.
	_, per, err := PlanContinual(rq, 64)
	if err != nil {
		t.Fatal(err)
	}
	if per.Eps <= rq.Eps1/64 {
		t.Fatalf("64 epochs: per-epoch eps %v, want strictly more than the basic split %v", per.Eps, rq.Eps1/64)
	}
	if _, _, err := PlanContinual(rq, 0); err == nil {
		t.Fatal("0 epochs accepted")
	}
}

func TestPlanPEOSTightLocalBudget(t *testing.T) {
	// With eps3 tiny, the plan must respect it and compensate with nr.
	rq := Requirements{
		Eps1: 0.5, Eps2: 1, Eps3: 0.2,
		D: 100, N: testN, Delta: testDelta,
	}
	plan, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EpsL > 0.2*1.0001 {
		t.Fatalf("epsL %v exceeds tight eps3", plan.EpsL)
	}
}

func TestPlanPEOSSmallDomainPrefersGRR(t *testing.T) {
	rq := Requirements{
		Eps1: 0.3, Eps2: 1, Eps3: 5,
		D: 2, N: testN, Delta: testDelta,
	}
	plan, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	// d=2: GRR and SOLH(d'=2) coincide structurally; either is
	// acceptable but the output space must be 2.
	if plan.DPrime != 2 {
		t.Fatalf("output space %d, want 2", plan.DPrime)
	}
}

// A tight Eps2 (strong protection against colluding users) forces so
// many fake reports that they alone satisfy Eps1; the planner must
// still find the configuration rather than reporting infeasibility.
func TestPlanPEOSOverblanketedStillFeasible(t *testing.T) {
	rq := Requirements{
		Eps1: 2,    // loose server budget
		Eps2: 0.05, // very tight collusion budget -> nr huge
		Eps3: 4,
		D:    50, N: 100000, Delta: testDelta,
	}
	plan, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Achieved.EpsC > rq.Eps1*1.0001 {
		t.Errorf("epsC %v exceeds %v", plan.Achieved.EpsC, rq.Eps1)
	}
	if plan.Achieved.EpsS > rq.Eps2*1.0001 {
		t.Errorf("epsS %v exceeds %v", plan.Achieved.EpsS, rq.Eps2)
	}
	// The fake budget must be enormous (>= 14 ln(2/delta) * 2 / eps2^2).
	if plan.NR < 100000 {
		t.Errorf("nr = %d, expected a massive fake budget", plan.NR)
	}
}

func TestPlanPEOSValidation(t *testing.T) {
	bad := []Requirements{
		{Eps1: 0, Eps2: 1, Eps3: 1, D: 10, N: 100, Delta: 1e-9},
		{Eps1: 1, Eps2: 1, Eps3: 1, D: 1, N: 100, Delta: 1e-9},
		{Eps1: 1, Eps2: 1, Eps3: 1, D: 10, N: 1, Delta: 1e-9},
		{Eps1: 1, Eps2: 1, Eps3: 1, D: 10, N: 100, Delta: 0},
	}
	for i, rq := range bad {
		if _, err := PlanPEOS(rq); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Cross-check: a planned configuration, evaluated through the forward
// corollary, reproduces its claimed guarantees.
func TestPlanPEOSSelfConsistent(t *testing.T) {
	rq := Requirements{Eps1: 0.8, Eps2: 3, Eps3: 6, D: 42178, N: 990002, Delta: testDelta}
	plan, err := PlanPEOS(rq)
	if err != nil {
		t.Fatal(err)
	}
	g := PEOSEpsilons(plan.EpsL, plan.DPrime, rq.N, plan.NR, rq.Delta)
	if math.Abs(g.EpsC-plan.Achieved.EpsC) > 1e-9 {
		t.Errorf("epsC mismatch: %v vs %v", g.EpsC, plan.Achieved.EpsC)
	}
	if math.Abs(g.EpsS-plan.Achieved.EpsS) > 1e-9 {
		t.Errorf("epsS mismatch: %v vs %v", g.EpsS, plan.Achieved.EpsS)
	}
}
