package amplify

import (
	"errors"
	"math"
	"testing"
)

const (
	testN     = 602325 // IPUMS size
	testD     = 915
	testDelta = 1e-9
)

func TestBinomialMechanismEpsilon(t *testing.T) {
	// Theorem 1 at np = 14 ln(2/delta) gives eps = 1.
	np := 14 * math.Log(2/testDelta)
	if got := BinomialMechanismEpsilon(np, testDelta); math.Abs(got-1) > 1e-12 {
		t.Fatalf("eps = %v, want 1", got)
	}
	// eps scales as 1/sqrt(np).
	if got := BinomialMechanismEpsilon(4*np, testDelta); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("eps = %v, want 0.5", got)
	}
}

func TestBinomialMechanismPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BinomialMechanismEpsilon(0, testDelta)
}

func TestCentralEpsilonSOLHFormula(t *testing.T) {
	// Direct formula check at a hand-computed point.
	epsL, dPrime := 1.0, 10
	want := math.Sqrt(14 * math.Log(2/testDelta) * (math.E + 9) / float64(testN-1))
	if got := CentralEpsilonSOLH(epsL, dPrime, testN, testDelta); math.Abs(got-want) > 1e-12 {
		t.Fatalf("epsC = %v, want %v", got, want)
	}
}

func TestCentralEpsilonGRRMatchesSOLHWithD(t *testing.T) {
	// The GRR bound is the SOLH bound with d' = d.
	if CentralEpsilonGRR(1, testD, testN, testDelta) !=
		CentralEpsilonSOLH(1, testD, testN, testDelta) {
		t.Fatal("GRR and SOLH bounds disagree at d' = d")
	}
}

func TestCentralEpsilonMonotonicity(t *testing.T) {
	// Amplified epsC grows with epsL and with d', shrinks with n.
	base := CentralEpsilonSOLH(1, 10, testN, testDelta)
	if CentralEpsilonSOLH(2, 10, testN, testDelta) <= base {
		t.Error("epsC should grow with epsL")
	}
	if CentralEpsilonSOLH(1, 20, testN, testDelta) <= base {
		t.Error("epsC should grow with d'")
	}
	if CentralEpsilonSOLH(1, 10, 2*testN, testDelta) >= base {
		t.Error("epsC should shrink with n")
	}
}

func TestAmplificationShrinksBudget(t *testing.T) {
	// The whole point of the shuffle model: epsC < epsL in the
	// amplification regime.
	epsL := 4.0
	if epsC := CentralEpsilonSOLH(epsL, 50, testN, testDelta); epsC >= epsL {
		t.Fatalf("no amplification: epsC=%v >= epsL=%v", epsC, epsL)
	}
}

func TestLocalEpsilonSOLHRoundTrip(t *testing.T) {
	// Inversion: epsL -> epsC -> epsL must be the identity.
	for _, dPrime := range []int{2, 10, 100} {
		for _, epsL := range []float64{0.5, 1, 3} {
			epsC := CentralEpsilonSOLH(epsL, dPrime, testN, testDelta)
			got, err := LocalEpsilonSOLH(epsC, dPrime, testN, testDelta)
			if err != nil {
				t.Fatalf("d'=%d epsL=%v: %v", dPrime, epsL, err)
			}
			if math.Abs(got-epsL) > 1e-9 {
				t.Fatalf("d'=%d: roundtrip %v -> %v", dPrime, epsL, got)
			}
		}
	}
}

func TestLocalEpsilonGRRRoundTrip(t *testing.T) {
	epsC := CentralEpsilonGRR(2, testD, testN, testDelta)
	got, err := LocalEpsilonGRR(epsC, testD, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("roundtrip gave %v", got)
	}
}

func TestLocalEpsilonGRRNoAmplification(t *testing.T) {
	// Below the threshold epsC < sqrt(14 ln(2/delta) d/(n-1)) the GRR
	// inversion must fail (the SH regime of Figure 3).
	threshold := math.Sqrt(14 * math.Log(2/testDelta) * testD / float64(testN-1))
	_, err := LocalEpsilonGRR(threshold*0.9, testD, testN, testDelta)
	if !errors.Is(err, ErrNoAmplification) {
		t.Fatalf("expected ErrNoAmplification, got %v", err)
	}
	// Above the threshold it must succeed.
	if _, err := LocalEpsilonGRR(threshold*1.5, testD, testN, testDelta); err != nil {
		t.Fatalf("expected success above threshold: %v", err)
	}
}

func TestLocalEpsilonUnaryRoundTrip(t *testing.T) {
	epsC := CentralEpsilonUnary(1.5, testN, testDelta)
	got, err := LocalEpsilonUnary(epsC, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("roundtrip gave %v", got)
	}
}

func TestBlanketM(t *testing.T) {
	// m at epsC=1, IPUMS parameters: ~602324 / (14 ln(2e9)).
	want := float64(testN-1) / (14 * math.Log(2/testDelta))
	if got := BlanketM(1, testN, testDelta); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("m = %v, want %v", got, want)
	}
}

func TestOptimalDPrimeEquation5(t *testing.T) {
	// d' = floor((m+2)/3).
	if got := OptimalDPrime(100, 1000); got != 34 {
		t.Fatalf("OptimalDPrime(100) = %d, want 34", got)
	}
	if got := OptimalDPrime(1, 1000); got != 2 {
		t.Fatalf("small m should clamp to 2, got %d", got)
	}
	if got := OptimalDPrime(1e6, 50); got != 50 {
		t.Fatalf("should clamp to maxD, got %d", got)
	}
}

// The optimality property behind Equation (5): at fixed m, the chosen
// integer d' must not lose to its neighbors.
func TestOptimalDPrimeIsLocallyOptimal(t *testing.T) {
	for _, m := range []float64{20, 100, 1000, 54321} {
		dStar := OptimalDPrime(m, 1<<30)
		vStar, err := VarianceSOLHAt(m, dStar, testN)
		if err != nil {
			t.Fatalf("m=%v: %v", m, err)
		}
		for _, d := range []int{dStar - 1, dStar + 1, dStar * 2, dStar / 2} {
			if d < 2 || float64(d) >= m {
				continue
			}
			v, err := VarianceSOLHAt(m, d, testN)
			if err != nil {
				continue
			}
			// Integer floor can be off by one step from the real
			// optimum; require no *better-than-1%* improvement at
			// the immediate neighbors and factor-2 moves.
			if v < vStar*0.99 {
				t.Errorf("m=%v: d'=%d (var %.3e) beats chosen %d (var %.3e)",
					m, d, v, dStar, vStar)
			}
		}
	}
}

func TestVarianceGRRGrowsWithDomain(t *testing.T) {
	v1, err1 := VarianceGRR(1, 100, testN, testDelta)
	v2, err2 := VarianceGRR(1, 900, testN, testDelta)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v2 <= v1 {
		t.Fatalf("GRR variance should grow with d: %v vs %v", v1, v2)
	}
}

func TestVarianceSOLHBeatsGRRLargeDomain(t *testing.T) {
	// §IV-B3: for large d, SOLH wins; also exposed via PreferGRR.
	vg, err := VarianceGRR(0.8, testD, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := VarianceSOLH(0.8, testD, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if vs >= vg {
		t.Fatalf("SOLH (%v) should beat GRR (%v) at d=%d", vs, vg, testD)
	}
	if PreferGRR(0.8, testD, testN, testDelta) {
		t.Fatal("PreferGRR should be false at d=915")
	}
}

func TestPreferGRRSmallDomain(t *testing.T) {
	// At d=2 GRR has no hashing loss and should win.
	if !PreferGRR(0.5, 2, testN, testDelta) {
		vg, _ := VarianceGRR(0.5, 2, testN, testDelta)
		vs, dp, _ := VarianceSOLH(0.5, 2, testN, testDelta)
		t.Fatalf("GRR (%v) should beat SOLH (%v, d'=%d) at d=2", vg, vs, dp)
	}
}

func TestVarianceSOLHMatchesPaperShape(t *testing.T) {
	// Sanity-check the absolute scale at the Figure 3 operating point
	// epsC=1 (see DESIGN.md): variance should be ~5.6e-9.
	v, dPrime, err := VarianceSOLH(1, testD, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if dPrime < 600 || dPrime > 750 {
		t.Errorf("d' = %d, expected ~670", dPrime)
	}
	if v < 1e-9 || v > 1e-8 {
		t.Errorf("SOLH variance at epsC=1: %v, expected ~5.6e-9", v)
	}
}

func TestVarianceUnaryClose(t *testing.T) {
	// §IV-B3: unary encoding is "slightly better" than SOLH — same
	// order of magnitude.
	vu, err := VarianceUnary(1, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := VarianceSOLH(1, testD, testN, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	ratio := vs / vu
	if ratio < 0.2 || ratio > 20 {
		t.Fatalf("unary %v vs SOLH %v: ratio %v out of expected band", vu, vs, ratio)
	}
}

func TestVarianceAUEComparable(t *testing.T) {
	// §IV-B4: AUE differs from SOLH "by only a constant".
	va := VarianceAUE(1, testN, testDelta)
	vs, _, _ := VarianceSOLH(1, testD, testN, testDelta)
	ratio := va / vs
	if ratio < 0.05 || ratio > 50 {
		t.Fatalf("AUE %v vs SOLH %v: ratio %v", va, vs, ratio)
	}
}

func TestTableIOrdering(t *testing.T) {
	// Table I relationships. BBGN's bound has the same
	// sqrt((e^epsL+1)/n) structure as CSUZZ with a strictly smaller
	// constant (14 ln(2/delta) vs 32 ln(4/delta)), so it dominates
	// CSUZZ pointwise on binary domains.
	n := 1000000
	for _, epsL := range []float64{0.2, 0.4, 1, 2, 4} {
		bbgn := CentralEpsilonGRR(epsL, 2, n, testDelta)
		csuzz, _ := CentralEpsilonCSUZZ(epsL, n, testDelta)
		if bbgn >= csuzz {
			t.Fatalf("epsL=%v: BBGN (%v) should beat CSUZZ (%v)", epsL, bbgn, csuzz)
		}
	}
	// EFMRTT is only valid for epsL < 1/2 (its edge in that range is
	// linearity in epsL); BBGN's strength is applying beyond it — the
	// "circumstances under which the method can be used are different"
	// note under Table I.
	if _, ok := CentralEpsilonEFMRTT(0.4, n, testDelta); !ok {
		t.Fatal("EFMRTT condition should hold at epsL=0.4")
	}
	if _, ok := CentralEpsilonEFMRTT(0.6, n, testDelta); ok {
		t.Fatal("EFMRTT condition should fail at epsL=0.6")
	}
}

func TestCSUZZConditionDetection(t *testing.T) {
	// At tiny n the lower condition fails.
	_, ok := CentralEpsilonCSUZZ(0.5, 100, testDelta)
	if ok {
		t.Fatal("CSUZZ condition should fail at n=100")
	}
}

func TestValidatePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n":       func() { CentralEpsilonSOLH(1, 10, 1, testDelta) },
		"delta":   func() { CentralEpsilonSOLH(1, 10, testN, 0) },
		"dprime":  func() { CentralEpsilonSOLH(1, 1, testN, testDelta) },
		"epsC":    func() { BlanketM(0, testN, testDelta) },
		"peosOut": func() { PEOSEpsilons(1, 1, testN, 10, testDelta) },
		"peosNR":  func() { PEOSEpsilons(1, 10, testN, 0, testDelta) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
