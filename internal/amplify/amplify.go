// Package amplify implements the privacy-amplification analysis of the
// shuffle model: the binomial mechanism (Theorem 1), the amplification
// bounds for GRR ([9], Table I), unary encoding (Theorem 2) and SOLH
// (Theorem 3), their inversions (given a target central epsilon, derive
// the local budget), the variance expressions of §IV-B3 (Propositions
// 4-6), the optimal hashed-domain size d' (Equation 5), the PEOS
// guarantees (Corollaries 8 and 9), and the §VI-D parameter planner.
//
// Everything here is deterministic closed-form math, which keeps each
// theorem independently unit-testable.
package amplify

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoAmplification is returned when the requested central budget is
// below the threshold at which the shuffle bound is valid (for GRR:
// epsC < sqrt(14 ln(2/delta) d / (n-1)), the "no amplification" regime
// visible in Figure 3's SH curve).
var ErrNoAmplification = errors.New("amplify: no amplification possible at this budget")

func validate(n int, delta float64) {
	if n < 2 {
		panic("amplify: need n >= 2 users")
	}
	if delta <= 0 || delta >= 1 {
		panic("amplify: delta must be in (0, 1)")
	}
}

// BinomialMechanismEpsilon is Theorem 1: binomial noise Bin(n, p) on
// each histogram component yields (eps, delta)-DP with
// eps = sqrt(14 ln(2/delta) / (n p)).
func BinomialMechanismEpsilon(np float64, delta float64) float64 {
	if np <= 0 {
		panic("amplify: binomial mechanism needs np > 0")
	}
	if delta <= 0 || delta >= 1 {
		panic("amplify: delta must be in (0, 1)")
	}
	return math.Sqrt(14 * math.Log(2/delta) / np)
}

// CentralEpsilonGRR is the amplification bound of [9] (Table I, last
// row) for epsL-LDP GRR over domain size d shuffled among n users:
// epsC = sqrt(14 ln(2/delta) (e^epsL + d - 1) / (n - 1)).
func CentralEpsilonGRR(epsL float64, d, n int, delta float64) float64 {
	validate(n, delta)
	return math.Sqrt(14 * math.Log(2/delta) * (math.Exp(epsL) + float64(d) - 1) / float64(n-1))
}

// CentralEpsilonSOLH is Theorem 3: epsL-LDP SOLH with hashed domain d'
// shuffled among n users satisfies
// epsC = sqrt(14 ln(2/delta) (e^epsL + d' - 1) / (n - 1)).
func CentralEpsilonSOLH(epsL float64, dPrime, n int, delta float64) float64 {
	validate(n, delta)
	if dPrime < 2 {
		panic("amplify: d' must be >= 2")
	}
	return math.Sqrt(14 * math.Log(2/delta) * (math.Exp(epsL) + float64(dPrime) - 1) / float64(n-1))
}

// CentralEpsilonUnary is Theorem 2: an epsL-LDP unary-encoding method
// (per-bit budget epsL/2) satisfies
// epsC = 2 sqrt(14 ln(4/delta) (e^{epsL/2} + 1) / (n - 1)).
func CentralEpsilonUnary(epsL float64, n int, delta float64) float64 {
	validate(n, delta)
	return 2 * math.Sqrt(14*math.Log(4/delta)*(math.Exp(epsL/2)+1)/float64(n-1))
}

// CentralEpsilonEFMRTT is the Erlingsson et al. (SODA 2019) bound from
// Table I: epsC = sqrt(144 ln(1/delta)) * epsL / sqrt(n), valid for
// epsL < 1/2. ok reports whether the condition holds.
func CentralEpsilonEFMRTT(epsL float64, n int, delta float64) (epsC float64, ok bool) {
	validate(n, delta)
	epsC = math.Sqrt(144*math.Log(1/delta)) * epsL / math.Sqrt(float64(n))
	return epsC, epsL < 0.5
}

// CentralEpsilonCSUZZ is the Cheu et al. (EUROCRYPT 2019) bound from
// Table I for binary randomized response:
// epsC = sqrt(32 ln(4/delta) (e^epsL + 1) / n), valid when
// sqrt(192/n ln(4/delta)) <= epsC < 1. ok reports whether the bound's
// validity condition holds.
func CentralEpsilonCSUZZ(epsL float64, n int, delta float64) (epsC float64, ok bool) {
	validate(n, delta)
	epsC = math.Sqrt(32 * math.Log(4/delta) * (math.Exp(epsL) + 1) / float64(n))
	low := math.Sqrt(192 / float64(n) * math.Log(4/delta))
	return epsC, epsC >= low && epsC < 1
}

// BlanketM returns m = epsC^2 (n-1) / (14 ln(2/delta)), the value the
// quantity e^epsL + d' - 1 must take to hit the target central budget
// (the inversion of Theorem 3 / the GRR bound). m is the paper's
// shorthand in §IV-B3.
func BlanketM(epsC float64, n int, delta float64) float64 {
	validate(n, delta)
	if epsC <= 0 {
		panic("amplify: epsC must be > 0")
	}
	return epsC * epsC * float64(n-1) / (14 * math.Log(2/delta))
}

// OptimalDPrime is Equation (5): d' = floor((m+2)/3) minimizes the SOLH
// variance Var(m, d') = m^2 / (n (m-d')^2 (d'-1)) at fixed m, clamped to
// [2, maxD] (hashing into more buckets than the value domain d wastes
// budget, and d' < 2 carries no information).
func OptimalDPrime(m float64, maxD int) int {
	dPrime := int(math.Floor((m + 2) / 3))
	if dPrime < 2 {
		dPrime = 2
	}
	if maxD >= 2 && dPrime > maxD {
		dPrime = maxD
	}
	return dPrime
}

// LocalEpsilonSOLH inverts Theorem 3: the local budget achieving target
// epsC with hashed-domain size dPrime: e^epsL = m - d' + 1.
// Returns ErrNoAmplification when m <= d' (no positive local budget
// exists at this target).
func LocalEpsilonSOLH(epsC float64, dPrime, n int, delta float64) (float64, error) {
	m := BlanketM(epsC, n, delta)
	eL := m - float64(dPrime) + 1
	if eL <= 1 {
		return 0, fmt.Errorf("%w: m=%.3f <= d'=%d", ErrNoAmplification, m, dPrime)
	}
	return math.Log(eL), nil
}

// LocalEpsilonGRR inverts the GRR amplification bound: e^epsL = m-d+1.
// In the regime m <= d (epsC below sqrt(14 ln(2/delta) d/(n-1))) there
// is no amplification and the SH baseline falls back to epsL = epsC
// (§VII-B); this function returns ErrNoAmplification so callers can
// decide.
func LocalEpsilonGRR(epsC float64, d, n int, delta float64) (float64, error) {
	m := BlanketM(epsC, n, delta)
	eL := m - float64(d) + 1
	if eL <= 1 {
		return 0, fmt.Errorf("%w: m=%.3f <= d=%d", ErrNoAmplification, m, d)
	}
	return math.Log(eL), nil
}

// LocalEpsilonUnary inverts Theorem 2: e^{epsL/2} + 1 =
// epsC^2 (n-1) / (56 ln(4/delta)).
func LocalEpsilonUnary(epsC float64, n int, delta float64) (float64, error) {
	validate(n, delta)
	if epsC <= 0 {
		panic("amplify: epsC must be > 0")
	}
	mm := epsC * epsC * float64(n-1) / (56 * math.Log(4/delta))
	if mm <= 2 {
		return 0, fmt.Errorf("%w: unary M=%.3f <= 2", ErrNoAmplification, mm)
	}
	return 2 * math.Log(mm-1), nil
}

// VarianceGRR is Proposition 4: at fixed epsC, GRR's estimation variance
// is (m-1) / (n (m-d)^2). Only valid when m > d.
func VarianceGRR(epsC float64, d, n int, delta float64) (float64, error) {
	m := BlanketM(epsC, n, delta)
	if m <= float64(d)+1 {
		return 0, fmt.Errorf("%w: m=%.3f <= d+1", ErrNoAmplification, m)
	}
	md := m - float64(d)
	return (m - 1) / (float64(n) * md * md), nil
}

// VarianceUnary is Proposition 5: at fixed epsC, unary encoding's
// variance is (M-1) / (n (M-2)^2) with M = epsC^2(n-1)/(56 ln(4/delta)).
func VarianceUnary(epsC float64, n int, delta float64) (float64, error) {
	validate(n, delta)
	mm := epsC * epsC * float64(n-1) / (56 * math.Log(4/delta))
	if mm <= 3 {
		return 0, fmt.Errorf("%w: unary M=%.3f <= 3", ErrNoAmplification, mm)
	}
	return (mm - 1) / (float64(n) * (mm - 2) * (mm - 2)), nil
}

// VarianceSOLHAt is Proposition 6 at an explicit d':
// Var(m, d') = m^2 / (n (m-d')^2 (d'-1)).
func VarianceSOLHAt(m float64, dPrime, n int) (float64, error) {
	if dPrime < 2 {
		return 0, errors.New("amplify: d' must be >= 2")
	}
	md := m - float64(dPrime)
	if md <= 0 {
		return 0, fmt.Errorf("%w: m=%.3f <= d'=%d", ErrNoAmplification, m, dPrime)
	}
	return m * m / (float64(n) * md * md * float64(dPrime-1)), nil
}

// VarianceSOLH is Proposition 6 with the optimal d' of Equation (5):
// the best variance SOLH can achieve at target epsC. It also returns
// the chosen d'.
func VarianceSOLH(epsC float64, d, n int, delta float64) (v float64, dPrime int, err error) {
	m := BlanketM(epsC, n, delta)
	dPrime = OptimalDPrime(m, d)
	v, err = VarianceSOLHAt(m, dPrime, n)
	return v, dPrime, err
}

// VarianceAUE is the Balcer–Cheu variance at fixed epsC:
// gamma (1-gamma) / n with gamma = 200 ln(4/delta)/(epsC^2 n) (§IV-B4).
func VarianceAUE(epsC float64, n int, delta float64) float64 {
	validate(n, delta)
	gamma := 200 * math.Log(4/delta) / (epsC * epsC * float64(n))
	if gamma > 1 {
		gamma = 1
	}
	return gamma * (1 - gamma) / float64(n)
}

// PreferGRR reports whether GRR beats SOLH at the given target (§IV-B3
// "Comparison of the Methods"): both variances are computed and the
// smaller wins. GRR can only win when d is small.
func PreferGRR(epsC float64, d, n int, delta float64) bool {
	vg, errG := VarianceGRR(epsC, d, n, delta)
	vs, _, errS := VarianceSOLH(epsC, d, n, delta)
	if errG != nil {
		return false
	}
	if errS != nil {
		return true
	}
	return vg < vs
}
