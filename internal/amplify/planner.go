package amplify

import (
	"errors"
	"fmt"
	"math"

	"shuffledp/internal/composition"
)

// The §VI-D deployment planner: "Given the desired privacy level
// eps1, eps2, eps3 against the three adversaries Adv, Adv_u, Adv_a ...
// we can numerically search the optimal configuration of n_r and eps_l.
// Finally, given eps_l, we can choose to use either GRR or SOLH."

// Requirements captures a deployment's inputs.
type Requirements struct {
	// Eps1 bounds the server's view (Adv).
	Eps1 float64
	// Eps2 bounds the server + colluding-users view (Adv_u).
	Eps2 float64
	// Eps3 bounds the server + majority-of-shufflers view (Adv_a);
	// this is the pure LDP fallback, so EpsL <= Eps3.
	Eps3 float64
	// D is the value-domain size, N the number of users.
	D, N int
	// Delta is the (shared) failure probability.
	Delta float64
}

func (rq Requirements) validate() error {
	if rq.Eps1 <= 0 || rq.Eps2 <= 0 || rq.Eps3 <= 0 {
		return errors.New("amplify: all three epsilon targets must be > 0")
	}
	if rq.D < 2 {
		return errors.New("amplify: domain size must be >= 2")
	}
	if rq.N < 2 {
		return errors.New("amplify: need at least 2 users")
	}
	if rq.Delta <= 0 || rq.Delta >= 1 {
		return errors.New("amplify: delta must be in (0, 1)")
	}
	return nil
}

// Plan is a concrete PEOS configuration.
type Plan struct {
	// UseGRR selects the frequency oracle: GRR when true, SOLH when
	// false.
	UseGRR bool
	// DPrime is the hashed-domain size (equals D when UseGRR).
	DPrime int
	// EpsL is the local budget each user spends.
	EpsL float64
	// NR is the number of fake reports the shufflers contribute in
	// total.
	NR int
	// Achieved are the resulting guarantees against the three
	// adversaries.
	Achieved PEOSGuarantees
	// Variance is the predicted per-value estimation variance.
	Variance float64
}

// String renders the plan the way the paper discusses configurations.
func (p Plan) String() string {
	fo := "SOLH"
	if p.UseGRR {
		fo = "GRR"
	}
	return fmt.Sprintf("%s(d'=%d, epsL=%.4f) + nr=%d fakes -> epsC=%.4f epsS=%.4f var=%.3e",
		fo, p.DPrime, p.EpsL, p.NR, p.Achieved.EpsC, p.Achieved.EpsS, p.Variance)
}

// PlanPEOS searches nr, epsL, the oracle choice and (for SOLH) d' to
// minimize estimation variance subject to the three adversary budgets.
// The search is the numeric optimization §VI-D prescribes: for each
// candidate output-space size the minimal feasible nr is derived in
// closed form, epsL is capped at Eps3, and the variance is evaluated
// exactly.
func PlanPEOS(rq Requirements) (Plan, error) {
	if err := rq.validate(); err != nil {
		return Plan{}, err
	}
	best := Plan{Variance: math.Inf(1)}
	L := 14 * math.Log(2/rq.Delta)

	consider := func(outputSpace int, grr bool) {
		p, err := planAt(rq, outputSpace, grr, L)
		if err != nil {
			return
		}
		if p.Variance < best.Variance {
			best = p
		}
	}

	// GRR: output space fixed at d.
	consider(rq.D, true)
	// SOLH: sweep d' over a geometric grid plus the unconstrained
	// optimum's neighborhood.
	maxDPrime := rq.D
	seen := map[int]bool{}
	for dp := 2; dp <= maxDPrime; dp = dp*5/4 + 1 {
		seen[dp] = true
		consider(dp, false)
	}
	// Refine around the analytically optimal d' at the minimal nr.
	a := L / (rq.Eps1 * rq.Eps1)
	for _, guess := range []int{
		PEOSOptimalDPrime(rq.Eps1, rq.N, int(math.Ceil(L*2/(rq.Eps2*rq.Eps2))), rq.D, rq.Delta),
		int(((float64(rq.N-1))/a + 2) / 3),
	} {
		for dp := guess - 2; dp <= guess+2; dp++ {
			if dp >= 2 && dp <= maxDPrime && !seen[dp] {
				seen[dp] = true
				consider(dp, false)
			}
		}
	}
	if math.IsInf(best.Variance, 1) {
		return Plan{}, errors.New("amplify: no feasible PEOS configuration found")
	}
	return best, nil
}

// PlanContinual plans a continual-observation deployment: the same
// population reports every epoch, so each adversary's total budget in
// rq must cover the composition of all `epochs` collection rounds.
// Every budget is split per-epoch with composition.MaxSplit (the
// better of even basic splitting and the advanced-composition split,
// which for many epochs affords each round strictly more than
// total/epochs), and one PEOS configuration is planned at the
// per-epoch requirements. It returns the per-epoch plan and the
// per-epoch central guarantee — what a budget.Ledger for the service
// should charge each rotation.
func PlanContinual(rq Requirements, epochs int) (Plan, composition.Guarantee, error) {
	if err := rq.validate(); err != nil {
		return Plan{}, composition.Guarantee{}, err
	}
	if epochs < 1 {
		return Plan{}, composition.Guarantee{}, errors.New("amplify: need at least 1 epoch")
	}
	per := rq
	perDelta := rq.Delta
	for _, split := range []struct {
		eps *float64
	}{{&per.Eps1}, {&per.Eps2}, {&per.Eps3}} {
		g, err := composition.MaxSplit(composition.Guarantee{Eps: *split.eps, Delta: rq.Delta}, epochs)
		if err != nil {
			return Plan{}, composition.Guarantee{}, fmt.Errorf("amplify: splitting budget across %d epochs: %w", epochs, err)
		}
		*split.eps = g.Eps
		if g.Delta < perDelta {
			perDelta = g.Delta
		}
	}
	per.Delta = perDelta
	plan, err := PlanPEOS(per)
	if err != nil {
		return Plan{}, composition.Guarantee{}, err
	}
	return plan, composition.Guarantee{Eps: per.Eps1, Delta: per.Delta}, nil
}

// planAt finds the minimal-variance configuration at a fixed output
// space (d' for SOLH, d for GRR).
func planAt(rq Requirements, outputSpace int, grr bool, L float64) (Plan, error) {
	if outputSpace < 2 {
		return Plan{}, errors.New("amplify: output space must be >= 2")
	}
	os := float64(outputSpace)
	// Constraint from Adv_u (Corollaries 8/9): nr >= 14 ln(2/delta) *
	// outputSpace / eps2^2.
	nrUsers := int(math.Ceil(L * os / (rq.Eps2 * rq.Eps2)))
	if nrUsers < 1 {
		nrUsers = 1
	}
	// Constraint from Adv with epsL capped at Eps3: the blanket
	// (n-1)/(e^epsL+os-1) + nr/os must reach a = L/eps1^2. With the
	// largest allowed epsL, the users contribute the least, so this
	// lower-bounds nr.
	a := L / (rq.Eps1 * rq.Eps1)
	usersBlanket := float64(rq.N-1) / (math.Exp(rq.Eps3) + os - 1)
	nrServer := 0
	if usersBlanket < a {
		nrServer = int(math.Ceil(os * (a - usersBlanket)))
	}
	nr := nrUsers
	if nrServer > nr {
		nr = nrServer
	}
	// With nr fixed, spend as much local budget as epsC allows (utility
	// increases with epsL), capped at Eps3. When the inversion fails
	// because the fakes alone already blanket past the Eps1 target
	// (overblanketed / no-amplification errors), ANY local budget
	// satisfies Adv, so spend the full Eps3; the feasibility re-check
	// below still validates the achieved guarantees.
	epsL, m, err := PEOSLocalEpsilon(rq.Eps1, outputSpace, rq.N, nr, rq.Delta)
	if err != nil {
		epsL = rq.Eps3
		m = math.Exp(epsL) + os - 1
	}
	if epsL > rq.Eps3 {
		epsL = rq.Eps3
		m = math.Exp(epsL) + os - 1
	}
	variance, err := PEOSVariance(m, outputSpace, rq.N, nr, grr)
	if err != nil {
		return Plan{}, err
	}
	g := PEOSEpsilons(epsL, outputSpace, rq.N, nr, rq.Delta)
	// Feasibility re-check (guards rounding).
	if g.EpsC > rq.Eps1*(1+1e-9) || g.EpsS > rq.Eps2*(1+1e-9) || epsL > rq.Eps3*(1+1e-9) {
		return Plan{}, fmt.Errorf("amplify: configuration infeasible at outputSpace=%d", outputSpace)
	}
	return Plan{
		UseGRR:   grr,
		DPrime:   outputSpace,
		EpsL:     epsL,
		NR:       nr,
		Achieved: g,
		Variance: variance,
	}, nil
}
