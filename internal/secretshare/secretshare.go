// Package secretshare implements additive secret sharing over Z_{2^l}
// (§II-C): a value v splits into r shares, r-1 of them uniformly random,
// the last one chosen so the shares sum to v modulo 2^l. No subset of
// fewer than r shares carries any information about v.
//
// PEOS shares each user's 64-bit encoded LDP report (ldp.WordEncoder)
// among the r shufflers this way, and the shufflers reshare during the
// oblivious shuffle (internal/oblivious).
package secretshare

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// Source yields uniform 64-bit randomness. *rng.Rand satisfies it (for
// deterministic tests and simulations); Crypto is the production source.
type Source interface {
	Uint64() uint64
}

// cryptoSource reads from crypto/rand.
type cryptoSource struct{}

// Uint64 implements Source with crypto/rand bytes.
func (cryptoSource) Uint64() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is unrecoverable for a security protocol.
		panic(fmt.Sprintf("secretshare: crypto/rand: %v", err))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Crypto is a Source backed by crypto/rand, for protocol use.
var Crypto Source = cryptoSource{}

// Modulus is the ring Z_{2^l}, 1 <= l <= 64.
type Modulus struct {
	bits int
	mask uint64 // 2^l - 1 (all ones for l = 64)
}

// NewModulus returns the ring Z_{2^bits}. It panics unless
// 1 <= bits <= 64.
func NewModulus(bits int) Modulus {
	if bits < 1 || bits > 64 {
		panic("secretshare: modulus bits must be in [1, 64]")
	}
	if bits == 64 {
		return Modulus{bits: 64, mask: ^uint64(0)}
	}
	return Modulus{bits: bits, mask: (1 << uint(bits)) - 1}
}

// Bits returns l.
func (m Modulus) Bits() int { return m.bits }

// Reduce maps x into [0, 2^l).
func (m Modulus) Reduce(x uint64) uint64 { return x & m.mask }

// Add returns (a + b) mod 2^l.
func (m Modulus) Add(a, b uint64) uint64 { return (a + b) & m.mask }

// Sub returns (a - b) mod 2^l.
func (m Modulus) Sub(a, b uint64) uint64 { return (a - b) & m.mask }

// Neg returns (-a) mod 2^l.
func (m Modulus) Neg(a uint64) uint64 { return (-a) & m.mask }

// Random returns a uniform element of Z_{2^l} from src.
func (m Modulus) Random(src Source) uint64 { return src.Uint64() & m.mask }

// Split shares value into r additive shares: r-1 uniform, the last the
// difference. It panics if r < 2 (a single "share" is the value itself
// and offers no hiding).
func Split(value uint64, r int, mod Modulus, src Source) []uint64 {
	if r < 2 {
		panic("secretshare: need at least 2 shares")
	}
	shares := make([]uint64, r)
	sum := uint64(0)
	for i := 0; i < r-1; i++ {
		shares[i] = mod.Random(src)
		sum = mod.Add(sum, shares[i])
	}
	shares[r-1] = mod.Sub(mod.Reduce(value), sum)
	return shares
}

// Combine reconstructs the secret from all shares.
func Combine(shares []uint64, mod Modulus) uint64 {
	sum := uint64(0)
	for _, s := range shares {
		sum = mod.Add(sum, s)
	}
	return sum
}

// SplitVector shares each element of values independently, returning r
// share vectors (the j-th vector goes to party j).
func SplitVector(values []uint64, r int, mod Modulus, src Source) [][]uint64 {
	out := make([][]uint64, r)
	for j := range out {
		out[j] = make([]uint64, len(values))
	}
	for i, v := range values {
		sum := uint64(0)
		for j := 0; j < r-1; j++ {
			s := mod.Random(src)
			out[j][i] = s
			sum = mod.Add(sum, s)
		}
		out[r-1][i] = mod.Sub(mod.Reduce(v), sum)
	}
	return out
}

// CombineVectors reconstructs the value vector from r share vectors of
// equal length.
func CombineVectors(shareVectors [][]uint64, mod Modulus) []uint64 {
	if len(shareVectors) == 0 {
		return nil
	}
	n := len(shareVectors[0])
	for _, sv := range shareVectors {
		if len(sv) != n {
			panic("secretshare: share vectors have unequal lengths")
		}
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		sum := uint64(0)
		for _, sv := range shareVectors {
			sum = mod.Add(sum, sv[i])
		}
		out[i] = sum
	}
	return out
}

// AddVectors returns the element-wise sum a + b mod 2^l (accumulating
// shares during resharing).
func AddVectors(a, b []uint64, mod Modulus) []uint64 {
	if len(a) != len(b) {
		panic("secretshare: vector length mismatch")
	}
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = mod.Add(a[i], b[i])
	}
	return out
}
