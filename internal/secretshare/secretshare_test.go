package secretshare

import (
	"math"
	"testing"
	"testing/quick"

	"shuffledp/internal/rng"
)

func TestModulusBasics(t *testing.T) {
	m := NewModulus(8)
	if m.Bits() != 8 {
		t.Fatal("Bits")
	}
	if m.Reduce(256) != 0 || m.Reduce(257) != 1 {
		t.Fatal("Reduce")
	}
	if m.Add(200, 100) != 44 {
		t.Fatal("Add wrap")
	}
	if m.Sub(1, 2) != 255 {
		t.Fatal("Sub wrap")
	}
	if m.Neg(1) != 255 || m.Neg(0) != 0 {
		t.Fatal("Neg")
	}
}

func TestModulus64(t *testing.T) {
	m := NewModulus(64)
	if m.Add(^uint64(0), 1) != 0 {
		t.Fatal("64-bit wrap")
	}
	if m.Reduce(^uint64(0)) != ^uint64(0) {
		t.Fatal("64-bit reduce is identity")
	}
}

func TestNewModulusPanics(t *testing.T) {
	for _, bits := range []int{0, 65, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for bits=%d", bits)
				}
			}()
			NewModulus(bits)
		}()
	}
}

func TestSplitCombineRoundTrip(t *testing.T) {
	src := rng.New(1)
	for _, bits := range []int{1, 8, 32, 64} {
		mod := NewModulus(bits)
		for _, r := range []int{2, 3, 7} {
			for i := 0; i < 200; i++ {
				v := mod.Random(src)
				shares := Split(v, r, mod, src)
				if len(shares) != r {
					t.Fatalf("wrong share count %d", len(shares))
				}
				if got := Combine(shares, mod); got != v {
					t.Fatalf("bits=%d r=%d: combine %d != %d", bits, r, got, v)
				}
			}
		}
	}
}

func TestSplitPanicsSingleShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(5, 1, NewModulus(8), rng.New(1))
}

// Hiding: any r-1 shares are (statistically) uniform, independent of
// the secret. We check the first share's distribution for two very
// different secrets.
func TestSharesHideSecret(t *testing.T) {
	mod := NewModulus(4) // 16 values for cheap chi-square
	src := rng.New(2)
	const trials = 64000
	for _, secret := range []uint64{0, 13} {
		counts := make([]int, 16)
		for i := 0; i < trials; i++ {
			counts[Split(secret, 3, mod, src)[0]]++
		}
		want := float64(trials) / 16
		for v, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("secret %d: share value %d count %d, want ~%.0f", secret, v, c, want)
			}
		}
	}
}

// Property: round trip for random values, share counts, and moduli.
func TestQuickSplitCombine(t *testing.T) {
	src := rng.New(3)
	f := func(v uint64, rRaw uint8, bitsRaw uint8) bool {
		r := 2 + int(rRaw%8)
		bits := 1 + int(bitsRaw%64)
		mod := NewModulus(bits)
		return Combine(Split(v, r, mod, src), mod) == mod.Reduce(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitVectorCombineVectors(t *testing.T) {
	mod := NewModulus(64)
	src := rng.New(4)
	values := []uint64{0, 1, ^uint64(0), 42, 1 << 63}
	sv := SplitVector(values, 5, mod, src)
	if len(sv) != 5 {
		t.Fatalf("want 5 share vectors, got %d", len(sv))
	}
	got := CombineVectors(sv, mod)
	for i, v := range values {
		if got[i] != v {
			t.Fatalf("index %d: %d != %d", i, got[i], v)
		}
	}
}

func TestCombineVectorsEmpty(t *testing.T) {
	if CombineVectors(nil, NewModulus(8)) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestCombineVectorsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CombineVectors([][]uint64{{1, 2}, {3}}, NewModulus(8))
}

func TestAddVectors(t *testing.T) {
	mod := NewModulus(8)
	got := AddVectors([]uint64{250, 1}, []uint64{10, 2}, mod)
	if got[0] != 4 || got[1] != 3 {
		t.Fatalf("AddVectors = %v", got)
	}
}

func TestAddVectorsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddVectors([]uint64{1}, []uint64{1, 2}, NewModulus(8))
}

// Resharing linearity: splitting each share of a sharing again and
// summing everything still reconstructs — the property the oblivious
// shuffle's reshare step depends on.
func TestReshareLinearity(t *testing.T) {
	mod := NewModulus(64)
	src := rng.New(5)
	secret := uint64(0xdeadbeefcafef00d)
	first := Split(secret, 3, mod, src)
	var all []uint64
	for _, s := range first {
		all = append(all, Split(s, 4, mod, src)...)
	}
	if got := Combine(all, mod); got != secret {
		t.Fatalf("reshare lost the secret: %x != %x", got, secret)
	}
}

func TestCryptoSource(t *testing.T) {
	// Smoke test: distinct outputs, no panic.
	a, b := Crypto.Uint64(), Crypto.Uint64()
	if a == b {
		// Technically possible, astronomically unlikely.
		c := Crypto.Uint64()
		if a == c {
			t.Fatal("crypto source returned repeated values")
		}
	}
}
