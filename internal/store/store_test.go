package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"shuffledp/internal/composition"
	"shuffledp/internal/transport"
)

var testMeta = Meta{Oracle: "SOLH", Domain: 64}

func mustCreate(t *testing.T, dir string, sync SyncPolicy) *Store {
	t.Helper()
	st, err := Create(dir, testMeta, sync)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The WAL record codec is an identity round trip for every record
// type.
func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecordReport, Epoch: 3, Payload: []byte("ciphertext")},
		{Type: RecordReport, Epoch: 0, Payload: nil},
		{Type: RecordSealedReport, Epoch: 9, Payload: []byte("sealed storage record")},
		{Type: RecordDrop, Epoch: 7, Reason: DropLate},
		{Type: RecordDrop, Epoch: 7, Reason: DropRejected},
		{Type: RecordRotate, Epoch: 2, Next: 3},
		{Type: RecordRotate, Epoch: 5, Next: -1},
	}
	for _, want := range recs {
		got, err := decodeRecord(encodeRecord(want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch || got.Next != want.Next ||
			got.Reason != want.Reason || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip changed %+v -> %+v", want, got)
		}
	}
}

// Create, append, close, Open: the tail replays every record in
// order; Create on the same directory then refuses with ErrExists.
func TestAppendAndRecoverTail(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	for i := 0; i < 10; i++ {
		if err := st.AppendReport(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendDrop(0, DropLate); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSealedReport(0, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Create(dir, testMeta, SyncBatch); !errors.Is(err, ErrExists) {
		t.Fatalf("Create on existing state: err = %v, want ErrExists", err)
	}

	st2, rec, err := Open(dir, testMeta, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Checkpoint != nil {
		t.Fatal("no checkpoint was written, but one was recovered")
	}
	if rec.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	if len(rec.Tail) != 12 {
		t.Fatalf("recovered %d records, want 12", len(rec.Tail))
	}
	for i := 0; i < 10; i++ {
		r := rec.Tail[i]
		if r.Type != RecordReport || r.Epoch != 0 || !bytes.Equal(r.Payload, []byte{byte(i)}) {
			t.Fatalf("record %d replayed as %+v", i, r)
		}
	}
	if r := rec.Tail[10]; r.Type != RecordDrop || r.Reason != DropLate {
		t.Fatalf("drop record replayed as %+v", r)
	}
	if r := rec.Tail[11]; r.Type != RecordSealedReport || !bytes.Equal(r.Payload, []byte("sealed")) {
		t.Fatalf("sealed report record replayed as %+v", r)
	}
}

// Open on a directory with no state reports ErrNoState (missing and
// empty directories alike).
func TestOpenNoState(t *testing.T) {
	if _, _, err := Open(filepath.Join(t.TempDir(), "missing"), testMeta, SyncBatch); !errors.Is(err, ErrNoState) {
		t.Fatalf("Open(missing dir): %v, want ErrNoState", err)
	}
	if _, _, err := Open(t.TempDir(), testMeta, SyncBatch); !errors.Is(err, ErrNoState) {
		t.Fatalf("Open(empty dir): %v, want ErrNoState", err)
	}
}

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Meta:          testMeta,
		OpenEpoch:     2,
		OpenCharged:   true,
		LedgerCharged: 2,
		Received:      1000, Late: 3, Rejected: 0, Batches: 8,
		AllTime: []byte("alltime-blob"),
		History: []EpochCheckpoint{
			{Epoch: 0, Reports: 500, Batches: 4, Guarantee: composition.Guarantee{Eps: 1, Delta: 1e-9}, Root: []byte("root0")},
			{Epoch: 1, Reports: 500, Batches: 4, Guarantee: composition.Guarantee{Eps: 1, Delta: 1e-9}, Root: []byte("root1")},
		},
	}
}

// The checkpoint codec round-trips every field.
func TestCheckpointRoundTrip(t *testing.T) {
	want := testCheckpoint()
	blob, err := encodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != want.Meta || got.OpenEpoch != want.OpenEpoch || got.Exhausted != want.Exhausted ||
		got.OpenCharged != want.OpenCharged ||
		got.LedgerCharged != want.LedgerCharged || got.Received != want.Received ||
		got.Late != want.Late || got.Rejected != want.Rejected || got.Batches != want.Batches ||
		!bytes.Equal(got.AllTime, want.AllTime) || len(got.History) != len(want.History) {
		t.Fatalf("round trip changed checkpoint:\n got %+v\nwant %+v", got, want)
	}
	for i := range want.History {
		if got.History[i].Epoch != want.History[i].Epoch || got.History[i].Guarantee != want.History[i].Guarantee ||
			!bytes.Equal(got.History[i].Root, want.History[i].Root) {
			t.Fatalf("history[%d] changed: %+v vs %+v", i, got.History[i], want.History[i])
		}
	}
}

// Rotation cuts a segment; a durable checkpoint prunes the segments
// and checkpoints it supersedes.
func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	for i := 0; i < 5; i++ {
		if err := st.AppendReport(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(1, []byte("ep1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint()
	cp.OpenEpoch = 1
	cp.History = cp.History[:1]
	if err := st.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint supersedes the first.
	if err := st.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segs, cks, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments on disk after checkpoint, want 1 (epoch-0 segment pruned)", len(segs))
	}
	if len(cks) != 1 {
		t.Fatalf("%d checkpoints on disk, want 1", len(cks))
	}

	st2, rec, err := Open(dir, testMeta, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.OpenEpoch != 1 {
		t.Fatalf("recovered checkpoint %+v, want open epoch 1", rec.Checkpoint)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Epoch != 1 || !bytes.Equal(rec.Tail[0].Payload, []byte("ep1")) {
		t.Fatalf("recovered tail %+v, want the single epoch-1 report", rec.Tail)
	}
}

// A crash can tear the final record mid-write: replay keeps every
// whole record, flags the tear, and appending continues in a fresh
// segment.
func TestTornFinalRecord(t *testing.T) {
	for _, cut := range []int{1, 3, 7} {
		dir := t.TempDir()
		st := mustCreate(t, dir, SyncBatch)
		for i := 0; i < 4; i++ {
			if err := st.AppendReport(0, []byte{byte(i), byte(i), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, err := scanDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := segs[len(segs)-1].path
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into the last record (each record is 4+8+4 = 16 bytes).
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		st2, rec, err := Open(dir, testMeta, SyncBatch)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !rec.TornTail {
			t.Fatalf("cut=%d: torn tail not flagged", cut)
		}
		if len(rec.Tail) != 3 {
			t.Fatalf("cut=%d: recovered %d records, want 3", cut, len(rec.Tail))
		}
		// The store stays appendable after recovering a torn tail.
		if err := st2.AppendReport(0, []byte("after")); err != nil {
			t.Fatal(err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := Open(dir, testMeta, SyncBatch)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec2.Tail) != 4 {
			t.Fatalf("cut=%d: second recovery got %d records, want 4", cut, len(rec2.Tail))
		}
	}
}

// A corrupted record that is NOT the torn tail — mid-segment, with
// records after it — is corruption and must fail recovery loudly.
func TestMidSegmentCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	if err := st.AppendReport(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment: a later segment
	// exists, so this cannot be a torn tail.
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testMeta, SyncBatch); err == nil {
		t.Fatal("mid-segment corruption recovered silently")
	} else if !errors.Is(err, transport.ErrChecksum) {
		t.Fatalf("corruption surfaced as %v, want a checksum error", err)
	}
}

// A checkpoint stamped with a future format version is refused with
// ErrFutureVersion — clean, no partial load, no checksum complaint.
func TestFutureCheckpointVersion(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	if err := st.WriteCheckpoint(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, cks, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := ckptPath(dir, cks[len(cks)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(ckptMagic)] = formatVersion + 5
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testMeta, SyncBatch); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("future checkpoint: err = %v, want ErrFutureVersion", err)
	}
}

// A WAL segment from a future format version is refused the same way.
func TestFutureSegmentVersion(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	if err := st.AppendReport(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segmentMagic)] = formatVersion + 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testMeta, SyncBatch); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("future segment: err = %v, want ErrFutureVersion", err)
	}
}

// A checkpoint written under one oracle configuration refuses to load
// under another.
func TestMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	if err := st.WriteCheckpoint(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Meta{Oracle: "GRR", Domain: 64}, SyncBatch); err == nil {
		t.Fatal("oracle mismatch recovered silently")
	}
	if _, _, err := Open(dir, Meta{Oracle: "SOLH", Domain: 128}, SyncBatch); err == nil {
		t.Fatal("domain mismatch recovered silently")
	}
}

// Abort tears away buffered records (the simulated crash): only what
// a Commit already flushed survives.
func TestAbortLosesUncommitted(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncNone)
	if err := st.AppendReport(0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	st.Abort()

	_, rec, err := Open(dir, testMeta, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || !bytes.Equal(rec.Tail[0].Payload, []byte("durable")) {
		t.Fatalf("recovered %d records after abort, want only the committed one", len(rec.Tail))
	}
}

// Rotation markers replay in order with their epochs intact, and an
// exhausted marker (next = -1) round-trips.
func TestRotateMarkersReplay(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	if err := st.AppendReport(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(1, -1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, testMeta, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		typ   byte
		epoch uint32
		next  int64
	}{
		{RecordReport, 0, 0},
		{RecordRotate, 0, 1},
		{RecordReport, 1, 0},
		{RecordRotate, 1, -1},
	}
	if len(rec.Tail) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Tail), len(want))
	}
	for i, w := range want {
		r := rec.Tail[i]
		if r.Type != w.typ || r.Epoch != w.epoch || (r.Type == RecordRotate && r.Next != w.next) {
			t.Fatalf("record %d: %+v, want %+v", i, r, w)
		}
	}
}

// The sync-policy flag values round-trip through parse/print, and an
// unknown value errors.
func TestSyncPolicyParse(t *testing.T) {
	for _, name := range []string{"always", "batch", "none"} {
		p, err := ParseSyncPolicy(name)
		if err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("policy %q prints as %q", name, p.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy parsed")
	}
}

// Malformed record payloads decode to errors, never to panics or to
// records with out-of-range fields.
func TestDecodeRecordRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{99},                        // unknown type
		{RecordReport},              // truncated epoch
		{RecordDrop, 0, 0, 0, 0, 9}, // unknown drop reason
		{RecordDrop, 0, 0, 0, 0},    // short drop
		{RecordRotate, 0, 0, 0, 0},  // short rotate
		append([]byte{RecordRotate, 1, 0, 0, 0}, []byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}...), // next = -2
	}
	for _, payload := range bad {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("decodeRecord(%v) succeeded", payload)
		}
	}
}

// Truncating a checkpoint at any byte boundary yields an error, never
// a panic or a partially-loaded checkpoint.
func TestCheckpointTruncationNeverPanics(t *testing.T) {
	blob, err := encodeCheckpoint(testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := decodeCheckpoint(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(blob))
		}
	}
	// Flipping any single body byte must fail the CRC (or a stricter
	// field check).
	for _, i := range []int{0, 5, 20, len(blob) / 2, len(blob) - 5} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := decodeCheckpoint(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", i)
		}
	}
}

// Dir reports the directory the store was opened on, and appends after
// Close fail cleanly.
func TestStoreClosedAndDir(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncAlways)
	if st.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", st.Dir(), dir)
	}
	if err := st.AppendReport(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, []byte("y")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := st.Commit(); err == nil {
		t.Fatal("commit after close succeeded")
	}
	if err := st.Rotate(0, 1); err == nil {
		t.Fatal("rotate after close succeeded")
	}
	if err := st.WriteCheckpoint(testCheckpoint()); err == nil {
		t.Fatal("checkpoint after close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	st.Abort() // no-op after close
}

// A corrupt length prefix in the final record — the tear landing one
// field earlier than the payload — must recover by truncation like
// any other torn tail, not brick the directory.
func TestTornFinalRecordCorruptLength(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, SyncBatch)
	for i := 0; i < 3; i++ {
		if err := st.AppendReport(0, []byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Each record is 16 bytes; set the high bit of the last record's
	// big-endian length prefix so it claims > MaxFrameSize.
	data[len(data)-16] |= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, testMeta, SyncBatch)
	if err != nil {
		t.Fatalf("corrupt length prefix bricked recovery: %v", err)
	}
	if !rec.TornTail {
		t.Fatal("corrupt length prefix not flagged as a torn tail")
	}
	if len(rec.Tail) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the tear", len(rec.Tail))
	}
}
