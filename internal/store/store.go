// Package store is the durability layer of the continual-observation
// service (internal/service): a write-ahead log for accepted report
// frames plus checkpoint snapshots taken at every epoch rotation, so a
// restarted analyzer recovers to a state bit-identical to an
// uninterrupted run — the prerequisite for re-starting without
// re-spending privacy budget.
//
// On-disk layout under one data directory:
//
//	wal-00000001.log    WAL segments: CRC32C-framed records
//	ckpt-00000001.snap  checkpoint snapshots, highest index wins
//
// Each WAL record is a transport.WriteCheckedFrame (length prefix +
// payload + CRC32C trailer) whose payload starts with a record-type
// byte: an accepted report ciphertext tagged with the epoch it was
// routed to, a counted drop (late or rejected), or a rotation marker
// sealing one epoch and naming the next. The service appends report
// records before any worker aggregates them, so every report that can
// influence an estimate is on its way to disk first.
//
// A checkpoint is written at every epoch seal and captures the whole
// durable state: sealed-epoch history roots (ldp aggregator blobs),
// the all-time aggregate, the budget ledger's charged-epoch count, and
// the service counters at the rotation boundary. Segments are cut at
// rotation markers, so once a checkpoint with open epoch E is durable
// every segment holding only records of epochs before E is deleted —
// the WAL never grows past roughly one epoch of traffic.
//
// Recovery (Open on a non-empty directory) loads the newest valid
// checkpoint and replays the WAL tail: records for epochs the
// checkpoint already covers are skipped, a torn final record (a crash
// mid-write) truncates the tail cleanly, and state written by a newer
// format version is refused with ErrFutureVersion rather than loaded
// partially. See DESIGN.md §8 for the recovery invariants.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"shuffledp/internal/composition"
)

// SyncPolicy selects when the WAL is fsynced. Checkpoints and rotation
// markers are always fsynced regardless of policy — only per-record
// durability is negotiable.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs at Commit, which the service
	// calls at every shuffle-batch boundary: a crash loses at most the
	// partial batch since the last flush.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every appended record: no acknowledged
	// report is ever lost, at a large per-report cost.
	SyncAlways
	// SyncNone flushes records to the OS at Commit but never fsyncs
	// between checkpoints: a process crash loses nothing, a power cut
	// may lose everything since the last rotation.
	SyncNone
)

// String implements flag.Value-style printing ("batch", "always",
// "none").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, batch, or none)", s)
}

// formatVersion is the on-disk format version stamped into every WAL
// segment header and checkpoint. Readers refuse newer versions with
// ErrFutureVersion.
const formatVersion = 1

// ErrFutureVersion is returned when a segment or checkpoint was
// written by a newer format version than this build reads. The state
// is intact — run it through the newer build — but nothing is loaded.
var ErrFutureVersion = errors.New("store: state written by a newer format version")

// ErrExists is returned by Create when the directory already holds
// durable state; a fresh service must not silently overwrite it (use
// Open / service.Recover).
var ErrExists = errors.New("store: directory already holds durable state")

// ErrNoState is returned by Open when the directory holds no durable
// state to recover.
var ErrNoState = errors.New("store: directory holds no durable state")

// Meta identifies the service configuration a data directory belongs
// to. It is stamped into every checkpoint and validated on recovery so
// state cannot be replayed under a different oracle.
type Meta struct {
	// Oracle is the frequency oracle's Name().
	Oracle string
	// Domain is the oracle's value-domain size d.
	Domain int
}

// Record types. Append-only: a released type keeps its byte forever.
const (
	// RecordReport is one accepted report: the epoch it was routed to
	// plus its ciphertext frame (reports are logged encrypted — the
	// WAL never holds plaintext reports).
	RecordReport byte = 1
	// RecordDrop is one dropped report, counted but never aggregated.
	RecordDrop byte = 2
	// RecordRotate seals one epoch and names the next (or none, when
	// the budget ledger refused it).
	RecordRotate byte = 3
	// RecordSealedReport is one accepted session report: the report
	// arrived under a connection-ephemeral session key (no re-derivable
	// ciphertext exists), so the service re-seals the plaintext under
	// its at-rest storage key (ecies.StorageSealer) before logging. The
	// payload is the sealed storage record, keeping the WAL's
	// never-holds-plaintext property for the session ingest path.
	RecordSealedReport byte = 4
)

// Drop reasons carried by RecordDrop.
const (
	// DropLate marks a report asserting an epoch that is not open.
	DropLate byte = 0
	// DropRejected marks a report refused after budget exhaustion.
	DropRejected byte = 1
)

// Record is one WAL entry.
type Record struct {
	// Type is one of RecordReport, RecordDrop, RecordRotate,
	// RecordSealedReport.
	Type byte
	// Epoch is the epoch a report or drop was accounted to, or the
	// epoch a rotation sealed.
	Epoch uint32
	// Next is the epoch a rotation opened, -1 when the ledger refused
	// to open one (budget exhausted). Meaningful only for RecordRotate.
	Next int64
	// Reason is the drop reason (DropLate, DropRejected). Meaningful
	// only for RecordDrop.
	Reason byte
	// Payload is the report's ciphertext frame (RecordReport) or
	// sealed storage record (RecordSealedReport).
	Payload []byte
}

// EpochCheckpoint is one sealed epoch inside a Checkpoint: the frozen
// snapshot fields plus the marshaled root aggregator the window
// queries clone-merge from.
type EpochCheckpoint struct {
	// Epoch is the sealed epoch's id.
	Epoch int
	// Reports is how many reports the epoch aggregated.
	Reports int
	// Batches is how many shuffled batches the epoch received.
	Batches int64
	// Guarantee is the per-epoch privacy guarantee charged for it.
	Guarantee composition.Guarantee
	// Root is the epoch root aggregator's MarshalBinary blob.
	Root []byte
}

// Checkpoint is the durable state snapshot written at every epoch
// seal. Restoring it plus replaying the WAL tail reproduces the
// service bit-identically.
type Checkpoint struct {
	// Meta echoes the service configuration for validation on load.
	Meta Meta
	// OpenEpoch is the id of the epoch open after the seal this
	// checkpoint recorded (when Exhausted, the id the next epoch would
	// have had).
	OpenEpoch int
	// Exhausted records that the budget ledger refused to open another
	// epoch: a recovered service must keep refusing ingestion.
	Exhausted bool
	// OpenCharged records whether the ledger already holds a charge
	// for OpenEpoch. True for checkpoints written by a rotation (the
	// charge precedes the marker); false for a drain seal, whose
	// "next" epoch only ever opens — and must then be charged — if
	// the directory is recovered.
	OpenCharged bool
	// LedgerCharged is how many epochs the budget ledger had charged
	// (0 when the service runs without a ledger).
	LedgerCharged int
	// Received, Late, Rejected, and Batches are the durable service
	// counters at the rotation boundary.
	Received, Late, Rejected, Batches int64
	// AllTime is the all-time aggregate's MarshalBinary blob.
	AllTime []byte
	// History is the retained sealed-epoch records, oldest first.
	History []EpochCheckpoint
}

// Recovered is what Open found on disk: the newest checkpoint (nil if
// none was ever written) and the WAL tail past it, already filtered to
// the records the checkpoint does not cover.
type Recovered struct {
	// Checkpoint is the newest valid checkpoint, nil if none exists.
	Checkpoint *Checkpoint
	// Tail holds the WAL records not covered by Checkpoint, in append
	// order.
	Tail []Record
	// TornTail reports that the final WAL record was torn (a crash
	// mid-write) and the tail was truncated at the last whole record.
	TornTail bool
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	ckptPrefix     = "ckpt-"
	ckptSuffix     = ".snap"
	segmentMagic   = "SDPW"
	ckptMagic      = "SDPC"
	maxNameLen     = 256
	maxHistoryLen  = 1 << 20
	maxBlobLen     = 1 << 30
	segHeaderExtra = 8 // epoch open at segment creation
)

// --- record encoding ---

func encodeRecord(rec Record) []byte {
	switch rec.Type {
	case RecordReport, RecordSealedReport:
		buf := make([]byte, 0, 5+len(rec.Payload))
		buf = append(buf, rec.Type)
		buf = binary.LittleEndian.AppendUint32(buf, rec.Epoch)
		return append(buf, rec.Payload...)
	case RecordDrop:
		buf := make([]byte, 0, 6)
		buf = append(buf, RecordDrop)
		buf = binary.LittleEndian.AppendUint32(buf, rec.Epoch)
		return append(buf, rec.Reason)
	case RecordRotate:
		buf := make([]byte, 0, 13)
		buf = append(buf, RecordRotate)
		buf = binary.LittleEndian.AppendUint32(buf, rec.Epoch)
		return binary.LittleEndian.AppendUint64(buf, uint64(rec.Next))
	}
	panic(fmt.Sprintf("store: encoding unknown record type %d", rec.Type))
}

func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, errors.New("store: empty WAL record")
	}
	switch payload[0] {
	case RecordReport, RecordSealedReport:
		if len(payload) < 5 {
			return Record{}, errors.New("store: truncated report record")
		}
		return Record{
			Type:    payload[0],
			Epoch:   binary.LittleEndian.Uint32(payload[1:]),
			Payload: append([]byte(nil), payload[5:]...),
		}, nil
	case RecordDrop:
		if len(payload) != 6 {
			return Record{}, errors.New("store: malformed drop record")
		}
		if r := payload[5]; r != DropLate && r != DropRejected {
			return Record{}, fmt.Errorf("store: unknown drop reason %d", r)
		}
		return Record{
			Type:   RecordDrop,
			Epoch:  binary.LittleEndian.Uint32(payload[1:]),
			Reason: payload[5],
		}, nil
	case RecordRotate:
		if len(payload) != 13 {
			return Record{}, errors.New("store: malformed rotate record")
		}
		next := int64(binary.LittleEndian.Uint64(payload[5:]))
		if next < -1 || next > math.MaxUint32 {
			return Record{}, fmt.Errorf("store: rotate record next epoch %d out of range", next)
		}
		return Record{
			Type:  RecordRotate,
			Epoch: binary.LittleEndian.Uint32(payload[1:]),
			Next:  next,
		}, nil
	}
	return Record{}, fmt.Errorf("store: unknown WAL record type %d", payload[0])
}
