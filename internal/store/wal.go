package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"shuffledp/internal/transport"
)

// Store is an open data directory: the current WAL segment being
// appended to plus the checkpoint series. All methods are safe for
// concurrent use — the service appends records from its shuffler
// goroutine while rotations write checkpoints from the caller's.
type Store struct {
	dir  string
	meta Meta
	sync SyncPolicy

	mu        sync.Mutex
	closed    bool
	seg       *os.File
	segw      *bufio.Writer
	segIndex  uint64
	segEpochs map[uint64]uint64 // on-disk segment index -> epoch open at creation
	ckpts     []uint64          // on-disk checkpoint indexes, ascending

	// ckptMu serializes checkpoint writers without blocking appends
	// (WriteCheckpoint's disk I/O runs under it, outside mu).
	ckptMu sync.Mutex
}

type segmentInfo struct {
	index uint64
	path  string
}

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, index, segmentSuffix))
}

func ckptPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", ckptPrefix, index, ckptSuffix))
}

func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Create initializes a fresh data directory (making it if needed) and
// opens the first WAL segment. It refuses a directory that already
// holds durable state with ErrExists — recovering is Open's job, and a
// fresh service must never silently shadow an existing run.
func Create(dir string, meta Meta, sync SyncPolicy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	segs, cks, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 || len(cks) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	}
	s := &Store{dir: dir, meta: meta, sync: sync, segEpochs: map[uint64]uint64{}}
	if err := s.openSegment(1, 0); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing data directory for recovery: it picks the
// newest valid checkpoint, replays every WAL segment past it into
// Recovered.Tail (truncating a torn final record), validates meta, and
// leaves the store ready for appending on a fresh segment. A directory
// with no state returns ErrNoState.
func Open(dir string, meta Meta, sync SyncPolicy) (*Store, *Recovered, error) {
	segs, cks, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(segs) == 0 && len(cks) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoState, dir)
	}

	s := &Store{dir: dir, meta: meta, sync: sync, segEpochs: map[uint64]uint64{}}
	rec := &Recovered{}

	// Newest checkpoint wins. A lower-indexed checkpoint is only a
	// fallback for the atomic-rename crash window (the tmp file was
	// never renamed), not for arbitrary corruption: a newest
	// checkpoint that exists but fails to parse is a hard error.
	if len(cks) > 0 {
		idx := cks[len(cks)-1]
		cp, err := loadCheckpoint(ckptPath(dir, idx))
		if err != nil {
			return nil, nil, fmt.Errorf("store: checkpoint %d: %w", idx, err)
		}
		if cp.Meta != meta {
			return nil, nil, fmt.Errorf("store: checkpoint is for oracle %s over domain %d, service runs %s over domain %d",
				cp.Meta.Oracle, cp.Meta.Domain, meta.Oracle, meta.Domain)
		}
		rec.Checkpoint = cp
		s.ckpts = cks
	}

	// Replay segments oldest-first, filtering records the checkpoint
	// already covers. Only the final segment may end in a torn record;
	// anything unreadable earlier is corruption, not a crash artifact.
	minEpoch := uint32(0)
	if rec.Checkpoint != nil {
		minEpoch = uint32(rec.Checkpoint.OpenEpoch)
	}
	openEpoch := uint64(minEpoch)
	for i, seg := range segs {
		last := i == len(segs)-1
		records, segEpoch, validOff, torn, err := readSegment(seg.path, last)
		if err != nil {
			return nil, nil, fmt.Errorf("store: segment %d: %w", seg.index, err)
		}
		if torn {
			// Truncate the tear away on disk so the next recovery sees
			// a clean segment boundary instead of mid-stream damage; a
			// segment torn inside its own header is simply removed.
			rec.TornTail = true
			if validOff < int64(segmentHeaderLen) {
				os.Remove(seg.path)
				s.segIndex = seg.index
				continue
			}
			if err := os.Truncate(seg.path, validOff); err != nil {
				return nil, nil, fmt.Errorf("store: truncating torn segment %d: %w", seg.index, err)
			}
		}
		s.segEpochs[seg.index] = segEpoch
		for _, r := range records {
			// A record accounted to an epoch before the checkpoint's
			// open epoch — including a rotate marker sealing one — is
			// already covered by the checkpoint.
			if r.Epoch < minEpoch {
				continue
			}
			rec.Tail = append(rec.Tail, r)
			if r.Type == RecordRotate && r.Next >= 0 {
				openEpoch = uint64(r.Next)
			}
		}
		s.segIndex = seg.index
	}

	// Append into a fresh segment: the torn tail (if any) stays
	// truncated on disk implicitly because replay stops at the last
	// whole record and pruning removes the old segment at the next
	// checkpoint.
	if err := s.openSegment(s.segIndex+1, openEpoch); err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

func scanDir(dir string) ([]segmentInfo, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoState, dir)
		}
		return nil, nil, fmt.Errorf("store: scan data dir: %w", err)
	}
	var segs []segmentInfo
	var cks []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseIndexed(e.Name(), segmentPrefix, segmentSuffix); ok {
			segs = append(segs, segmentInfo{index: idx, path: filepath.Join(dir, e.Name())})
		}
		if idx, ok := parseIndexed(e.Name(), ckptPrefix, ckptSuffix); ok {
			cks = append(cks, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	sort.Slice(cks, func(i, j int) bool { return cks[i] < cks[j] })
	return segs, cks, nil
}

// segmentHeaderLen is the byte length of a segment header.
const segmentHeaderLen = len(segmentMagic) + 1 + segHeaderExtra

// readSegment parses one WAL segment, tracking validOff — the byte
// offset after the last whole record. In the final segment
// (last=true) a torn trailing record — truncated mid-write by a
// crash — ends the replay cleanly at validOff; in any earlier segment
// it is corruption and errors.
func readSegment(path string, last bool) (records []Record, segEpoch uint64, validOff int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)

	hdr := make([]byte, segmentHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if last {
			// A segment created but torn before its header completed:
			// an empty tail.
			return nil, 0, 0, true, nil
		}
		return nil, 0, 0, false, fmt.Errorf("reading header: %w", err)
	}
	if string(hdr[:len(segmentMagic)]) != segmentMagic {
		return nil, 0, 0, false, errors.New("bad segment magic")
	}
	if v := hdr[len(segmentMagic)]; v != formatVersion {
		if v > formatVersion {
			return nil, 0, 0, false, fmt.Errorf("%w: segment version %d, this build reads %d", ErrFutureVersion, v, formatVersion)
		}
		return nil, 0, 0, false, fmt.Errorf("unsupported segment version %d", v)
	}
	segEpoch = binary.LittleEndian.Uint64(hdr[len(segmentMagic)+1:])
	validOff = int64(segmentHeaderLen)

	for {
		payload, err := transport.ReadCheckedFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return records, segEpoch, validOff, false, nil
			}
			if last && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, transport.ErrChecksum) ||
				errors.Is(err, transport.ErrFrameTooLarge)) {
				// The crash tore the final record mid-write (a corrupt
				// length prefix is the same tear one field earlier);
				// everything before it replays.
				return records, segEpoch, validOff, true, nil
			}
			return nil, 0, 0, false, fmt.Errorf("reading record: %w", err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			if last {
				return records, segEpoch, validOff, true, nil
			}
			return nil, 0, 0, false, err
		}
		records = append(records, rec)
		validOff += int64(4 + len(payload) + 4)
	}
}

// openSegment starts a new WAL segment stamped with the epoch open at
// its creation. Callers hold mu (or own the store exclusively).
func (s *Store) openSegment(index, epoch uint64) error {
	f, err := os.OpenFile(segmentPath(s.dir, index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 64<<10)
	hdr := make([]byte, 0, len(segmentMagic)+1+segHeaderExtra)
	hdr = append(hdr, segmentMagic...)
	hdr = append(hdr, formatVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, epoch)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segw, s.segIndex = f, w, index
	s.segEpochs[index] = epoch
	syncDir(s.dir)
	return nil
}

// append frames one record onto the current segment.
func (s *Store) append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: append after close")
	}
	if err := transport.WriteCheckedFrame(s.segw, encodeRecord(rec)); err != nil {
		return fmt.Errorf("store: append WAL record: %w", err)
	}
	if s.sync == SyncAlways {
		if err := s.segw.Flush(); err != nil {
			return err
		}
		return s.seg.Sync()
	}
	return nil
}

// AppendReport logs one accepted report ciphertext routed to epoch.
// The service calls it before the report reaches any aggregator.
func (s *Store) AppendReport(epoch uint32, ct []byte) error {
	return s.append(Record{Type: RecordReport, Epoch: epoch, Payload: ct})
}

// AppendSealedReport logs one accepted session report, already
// re-sealed under the service's at-rest storage key (the connection's
// session key cannot be re-derived at recovery, so the original wire
// frame is useless to replay).
func (s *Store) AppendSealedReport(epoch uint32, sealed []byte) error {
	return s.append(Record{Type: RecordSealedReport, Epoch: epoch, Payload: sealed})
}

// AppendDrop logs one dropped report so the durable counters replay to
// the same values the live ones held.
func (s *Store) AppendDrop(epoch uint32, reason byte) error {
	return s.append(Record{Type: RecordDrop, Epoch: epoch, Reason: reason})
}

// Commit flushes buffered records to the OS and, under SyncBatch,
// fsyncs them. The service calls it at every shuffle-batch boundary.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: commit after close")
	}
	if err := s.segw.Flush(); err != nil {
		return err
	}
	if s.sync == SyncBatch {
		return s.seg.Sync()
	}
	return nil
}

// Rotate appends the rotation marker sealing epoch sealed (next is the
// opening epoch id, -1 when the ledger refused one), makes the closing
// segment durable regardless of policy, and cuts a fresh segment. The
// marker's durability is what lets a checkpoint-less replay re-derive
// the rotation; fsyncing here also guarantees no record of the new
// epoch can be durable before the marker that separates the epochs.
func (s *Store) Rotate(sealed uint32, next int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: rotate after close")
	}
	if err := transport.WriteCheckedFrame(s.segw, encodeRecord(Record{Type: RecordRotate, Epoch: sealed, Next: next})); err != nil {
		return fmt.Errorf("store: append rotate marker: %w", err)
	}
	if err := s.segw.Flush(); err != nil {
		return err
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	epoch := uint64(sealed) + 1
	if next >= 0 {
		epoch = uint64(next)
	}
	return s.openSegment(s.segIndex+1, epoch)
}

// WriteCheckpoint makes cp durable (write-to-temp, fsync, atomic
// rename, fsync directory) and then prunes: older checkpoints are
// deleted, and every WAL segment created before cp.OpenEpoch opened is
// covered by the checkpoint and deleted too. The disk writes run
// outside the append mutex — the shuffler's WAL appends (the ingest
// hot path) must not stall behind a checkpoint fsync — and ckptMu
// serializes concurrent checkpoint writers (the service additionally
// orders them under its rotation lock).
func (s *Store) WriteCheckpoint(cp *Checkpoint) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: checkpoint after close")
	}
	cp.Meta = s.meta
	var index uint64 = 1
	if n := len(s.ckpts); n > 0 {
		index = s.ckpts[n-1] + 1
	}
	s.mu.Unlock()

	blob, err := encodeCheckpoint(cp)
	if err != nil {
		return err
	}
	path := ckptPath(s.dir, index)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(s.dir)

	// Prune: the new checkpoint supersedes every older one, and every
	// segment whose records all predate the open epoch.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, old := range s.ckpts {
		os.Remove(ckptPath(s.dir, old))
	}
	s.ckpts = []uint64{index}
	for idx, epoch := range s.segEpochs {
		if idx != s.segIndex && epoch < uint64(cp.OpenEpoch) {
			os.Remove(segmentPath(s.dir, idx))
			delete(s.segEpochs, idx)
		}
	}
	return nil
}

// Close flushes and closes the WAL. The final flush is best-effort
// durability; checkpoints are the strong handoff.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.segw.Flush(); err != nil {
		s.seg.Close()
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return err
	}
	return s.seg.Close()
}

// Abort closes the WAL without flushing buffered records — the
// simulated hard crash of the recovery tests and the durable_monitor
// example: whatever the fsync policy already pushed to the OS
// survives, everything buffered in-process is torn away.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.seg.Close()
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// syncDir fsyncs a directory so renames and creations inside it are
// durable. Best-effort: some platforms refuse directory fsync, and the
// tail-truncation replay rule tolerates the resulting windows.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
