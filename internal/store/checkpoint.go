package store

// Checkpoint file encoding: a magic + version prefix, a little-endian
// body, and a CRC32C trailer over everything before it. The version
// byte sits outside nothing — it is covered by the CRC like the rest —
// but it is checked FIRST, so a checkpoint from a newer format version
// fails with ErrFutureVersion (clean, no partial load) rather than a
// checksum complaint.
//
//	magic "SDPC" | version u8 | body | crc32c u32 (over magic..body)
//
// Body layout:
//
//	oracle name   u16 len + bytes
//	domain        u64
//	open epoch    u64
//	exhausted     u8
//	open charged  u8
//	ledger epochs u64
//	received, late, rejected, batches   i64 each
//	all-time blob u32 len + bytes
//	history count u32, then per epoch:
//	  epoch u64 | reports u64 | batches u64 | eps bits u64 |
//	  delta bits u64 | root blob u32 len + bytes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"shuffledp/internal/composition"
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

func appendBlob(buf, blob []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
	return append(buf, blob...)
}

func encodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if len(cp.Meta.Oracle) == 0 || len(cp.Meta.Oracle) > maxNameLen {
		return nil, fmt.Errorf("store: checkpoint oracle name length %d out of range", len(cp.Meta.Oracle))
	}
	if len(cp.AllTime) > maxBlobLen {
		return nil, errors.New("store: all-time blob too large")
	}
	if len(cp.History) > maxHistoryLen {
		return nil, fmt.Errorf("store: checkpoint history of %d epochs too large", len(cp.History))
	}
	buf := make([]byte, 0, 256+len(cp.AllTime))
	buf = append(buf, ckptMagic...)
	buf = append(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cp.Meta.Oracle)))
	buf = append(buf, cp.Meta.Oracle...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Meta.Domain))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.OpenEpoch))
	for _, b := range []bool{cp.Exhausted, cp.OpenCharged} {
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.LedgerCharged))
	for _, c := range []int64{cp.Received, cp.Late, cp.Rejected, cp.Batches} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	buf = appendBlob(buf, cp.AllTime)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.History)))
	for _, h := range cp.History {
		if len(h.Root) > maxBlobLen {
			return nil, fmt.Errorf("store: epoch %d root blob too large", h.Epoch)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Epoch))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Reports))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Batches))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Guarantee.Eps))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Guarantee.Delta))
		buf = appendBlob(buf, h.Root)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC)), nil
}

// ckptReader is a panic-free cursor over the checkpoint body: the
// first short read latches an error and every later read returns
// zeros, so decodeCheckpoint validates once at the end.
type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = errors.New("store: checkpoint truncated")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *ckptReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *ckptReader) i64() int64 { return int64(r.u64()) }

func (r *ckptReader) intField(name string) int {
	v := r.u64()
	if v > math.MaxInt64/2 {
		r.fail(fmt.Errorf("store: checkpoint %s %d out of range", name, v))
		return 0
	}
	return int(v)
}

func (r *ckptReader) blob(name string) []byte {
	n := r.u32()
	if n > maxBlobLen {
		r.fail(fmt.Errorf("store: checkpoint %s blob of %d bytes too large", name, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *ckptReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	prefix := len(ckptMagic) + 1
	if len(data) < prefix+4 {
		return nil, errors.New("store: checkpoint file too short")
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, errors.New("store: bad checkpoint magic")
	}
	// Version before checksum: a future format must fail as such, not
	// as corruption.
	if v := data[len(ckptMagic)]; v != formatVersion {
		if v > formatVersion {
			return nil, fmt.Errorf("%w: checkpoint version %d, this build reads %d", ErrFutureVersion, v, formatVersion)
		}
		return nil, fmt.Errorf("store: unsupported checkpoint version %d", v)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(trailer) != crc32.Checksum(body, ckptCRC) {
		return nil, errors.New("store: checkpoint checksum mismatch")
	}

	r := &ckptReader{b: body[prefix:]}
	cp := &Checkpoint{}
	nameLen := int(r.u16())
	if nameLen == 0 || nameLen > maxNameLen {
		return nil, fmt.Errorf("store: checkpoint oracle name length %d out of range", nameLen)
	}
	cp.Meta.Oracle = string(r.take(nameLen))
	cp.Meta.Domain = r.intField("domain")
	cp.OpenEpoch = r.intField("open epoch")
	cp.Exhausted = r.u8() == 1
	cp.OpenCharged = r.u8() == 1
	cp.LedgerCharged = r.intField("ledger epochs")
	cp.Received = r.i64()
	cp.Late = r.i64()
	cp.Rejected = r.i64()
	cp.Batches = r.i64()
	cp.AllTime = r.blob("all-time")
	count := r.u32()
	if count > maxHistoryLen {
		return nil, fmt.Errorf("store: checkpoint history of %d epochs too large", count)
	}
	for i := uint32(0); i < count && r.err == nil; i++ {
		var h EpochCheckpoint
		h.Epoch = r.intField("history epoch")
		h.Reports = r.intField("history reports")
		h.Batches = r.i64()
		h.Guarantee = composition.Guarantee{
			Eps:   math.Float64frombits(r.u64()),
			Delta: math.Float64frombits(r.u64()),
		}
		h.Root = r.blob("history root")
		cp.History = append(cp.History, h)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("store: checkpoint has %d trailing bytes", len(r.b))
	}
	return cp, nil
}

func loadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(data)
}
