package oblivious

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// chanTransport delivers messages between in-process parties over
// per-pair channels — the loopback harness the TCP layer in
// internal/cluster is conformance-tested against.
type chanTransport struct {
	me    int
	pipes [][]chan Msg // pipes[from][to]
	fail  *failSet
}

// failSet marks parties whose links are severed (the kill test).
type failSet struct {
	mu   sync.Mutex
	dead map[int]bool
}

func (f *failSet) isDead(p int) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[p]
}

func (t *chanTransport) Send(to int, m Msg) error {
	if t.fail.isDead(to) || t.fail.isDead(t.me) {
		return errors.New("peer connection closed")
	}
	t.pipes[t.me][to] <- m
	return nil
}

func (t *chanTransport) Recv(from int) (Msg, error) {
	if t.fail.isDead(from) || t.fail.isDead(t.me) {
		return Msg{}, errors.New("peer connection closed")
	}
	m, ok := <-t.pipes[from][t.me]
	if !ok {
		return Msg{}, errors.New("peer connection closed")
	}
	return m, nil
}

func newPipes(r int) [][]chan Msg {
	pipes := make([][]chan Msg, r)
	for i := range pipes {
		pipes[i] = make([]chan Msg, r)
		for j := range pipes[i] {
			// Capacity 4 covers every per-round pair sequence; the
			// engine must not rely on it (sends run concurrently with
			// receives), but it keeps the harness snappy.
			pipes[i][j] = make(chan Msg, 4)
		}
	}
	return pipes
}

// runParties executes the distributed shuffle over the channel
// transport and returns each party's final vectors.
func runParties(t *testing.T, r int, vectors [][]uint64, enc []*ahe.Ciphertext, encHolder int, pub ahe.PublicKey, seed uint64) ([][]uint64, []([]*ahe.Ciphertext), []error) {
	t.Helper()
	pipes := newPipes(r)
	mod := secretshare.NewModulus(64)
	outPlain := make([][]uint64, r)
	outEnc := make([][]*ahe.Ciphertext, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	for j := 0; j < r; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cfg := PartyConfig{
				Index:   j,
				Parties: r,
				Mod:     mod,
				Source:  rng.Substream(seed, uint64(j)),
				Pub:     pub,
			}
			var plain []uint64
			var e []*ahe.Ciphertext
			if j == encHolder {
				e = enc
			} else {
				plain = vectors[j]
			}
			outPlain[j], outEnc[j], errs[j] = RunParty(cfg, &chanTransport{me: j, pipes: pipes}, plain, e)
		}(j)
	}
	wg.Wait()
	return outPlain, outEnc, errs
}

func sortedWords(words []uint64) []uint64 {
	out := append([]uint64(nil), words...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRunPartyPlainPreservesMultiset(t *testing.T) {
	mod := secretshare.NewModulus(64)
	// Pub is required even for plain runs (any party could in
	// principle receive a ciphertext); use a tiny test key.
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{2, 3, 4, 5} {
		r := r
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			const n = 23
			values := make([]uint64, n)
			src := rng.New(77)
			for i := range values {
				values[i] = src.Uint64()
			}
			vectors := secretshare.SplitVector(values, r, mod, src)
			outPlain, outEnc, errs := runParties(t, r, vectors, nil, -1, ahe.PublicKey(priv), 5)
			for j, err := range errs {
				if err != nil {
					t.Fatalf("party %d: %v", j, err)
				}
				if outEnc[j] != nil {
					t.Fatalf("party %d ended with a ciphertext vector in a plain run", j)
				}
			}
			got := secretshare.CombineVectors(outPlain, mod)
			want := sortedWords(values)
			if gotS := sortedWords(got); fmt.Sprint(gotS) != fmt.Sprint(want) {
				t.Fatalf("multiset changed:\n got %v\nwant %v", gotS, want)
			}
			// The order must actually have changed (n=23 elements; the
			// odds of the identity permutation surviving every round are
			// negligible — a fixed seed keeps this deterministic).
			if fmt.Sprint(got) == fmt.Sprint(values) {
				t.Fatal("shuffle left the vector order unchanged")
			}
		})
	}
}

func TestRunPartyEncryptedPreservesMultisetAndSingleHolder(t *testing.T) {
	mod := secretshare.NewModulus(64)
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub := ahe.PublicKey(priv)
	for _, r := range []int{2, 3} {
		r := r
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			const n = 11
			values := make([]uint64, n)
			src := rng.New(99)
			for i := range values {
				values[i] = src.Uint64()
			}
			vectors := secretshare.SplitVector(values, r, mod, src)
			// The last party holds its share vector encrypted, as in PEOS.
			encHolder := r - 1
			enc := make([]*ahe.Ciphertext, n)
			for i, w := range vectors[encHolder] {
				c, err := pub.Encrypt(w)
				if err != nil {
					t.Fatal(err)
				}
				enc[i] = c
			}
			outPlain, outEnc, errs := runParties(t, r, vectors, enc, encHolder, pub, 9)
			holders := 0
			st := &State{Plain: make([][]uint64, r), EncHolder: -1}
			for j, err := range errs {
				if err != nil {
					t.Fatalf("party %d: %v", j, err)
				}
				if outEnc[j] != nil {
					holders++
					st.Enc = outEnc[j]
					st.EncHolder = j
				} else {
					st.Plain[j] = outPlain[j]
				}
			}
			if holders != 1 {
				t.Fatalf("want exactly 1 ciphertext holder, got %d", holders)
			}
			got, err := Reveal(st, mod, priv)
			if err != nil {
				t.Fatal(err)
			}
			want := sortedWords(values)
			if gotS := sortedWords(got); fmt.Sprint(gotS) != fmt.Sprint(want) {
				t.Fatalf("multiset changed:\n got %v\nwant %v", gotS, want)
			}
		})
	}
}

// A dead peer must surface as an error from every surviving party, not
// as a hang or a silently wrong shuffle.
func TestRunPartyDeadPeerFailsCleanly(t *testing.T) {
	const r = 3
	mod := secretshare.NewModulus(64)
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	values := make([]uint64, n)
	src := rng.New(3)
	for i := range values {
		values[i] = src.Uint64()
	}
	vectors := secretshare.SplitVector(values, r, mod, src)

	pipes := newPipes(r)
	fail := &failSet{dead: map[int]bool{2: true}}
	var wg sync.WaitGroup
	errs := make([]error, r)
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cfg := PartyConfig{
				Index: j, Parties: r, Mod: mod,
				Source: rng.Substream(4, uint64(j)),
				Pub:    ahe.PublicKey(priv),
			}
			_, _, errs[j] = RunParty(cfg, &chanTransport{me: j, pipes: pipes, fail: fail}, vectors[j], nil)
		}(j)
	}
	wg.Wait()
	for j := 0; j < 2; j++ {
		if errs[j] == nil {
			t.Fatalf("party %d did not observe the dead peer", j)
		}
	}
}

func TestRunPartyConfigValidation(t *testing.T) {
	mod := secretshare.NewModulus(64)
	priv, _ := ahe.GenerateDGK(512, 64)
	base := PartyConfig{Index: 0, Parties: 2, Mod: mod, Source: rng.New(1), Pub: ahe.PublicKey(priv)}
	tr := &chanTransport{me: 0, pipes: newPipes(2)}
	if _, _, err := RunParty(base, tr, nil, nil); err == nil {
		t.Fatal("accepted a party with no vector")
	}
	cfg := base
	cfg.Source = nil
	if _, _, err := RunParty(cfg, tr, []uint64{1}, nil); err == nil {
		t.Fatal("accepted a party without randomness")
	}
	cfg = base
	cfg.Pub = nil
	if _, _, err := RunParty(cfg, tr, []uint64{1}, nil); err == nil {
		t.Fatal("accepted a party without the AHE key")
	}
	cfg = base
	cfg.Parties = 1
	if _, _, err := RunParty(cfg, tr, []uint64{1}, nil); err == nil {
		t.Fatal("accepted a single-party shuffle")
	}
	cfg = base
	cfg.Index = 5
	if _, _, err := RunParty(cfg, tr, []uint64{1}, nil); err == nil {
		t.Fatal("accepted an out-of-range index")
	}
}

// phaseCall records one Phaser announcement.
type phaseCall struct {
	round int
	phase Phase
}

// phaserTransport wraps chanTransport and records the phase boundaries
// RunParty announces — the hook internal/cluster uses to re-arm its
// per-phase network deadlines.
type phaserTransport struct {
	chanTransport
	mu    sync.Mutex
	calls []phaseCall
}

func (t *phaserTransport) Phase(round int, phase Phase) {
	t.mu.Lock()
	t.calls = append(t.calls, phaseCall{round, phase})
	t.mu.Unlock()
}

func TestRunPartyAnnouncesPhases(t *testing.T) {
	const (
		r      = 3
		rounds = 2
		seed   = 31
	)
	pub := ahe.PublicKey(dgk(t))
	pipes := newPipes(r)
	mod := secretshare.NewModulus(64)
	trs := make([]*phaserTransport, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	for j := 0; j < r; j++ {
		trs[j] = &phaserTransport{chanTransport: chanTransport{me: j, pipes: pipes}}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cfg := PartyConfig{
				Index:   j,
				Parties: r,
				Mod:     mod,
				Source:  rng.Substream(seed, uint64(j)),
				Pub:     pub,
				Rounds:  rounds,
			}
			_, _, errs[j] = RunParty(cfg, trs[j], []uint64{1, 2, 3}, nil)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", j, err)
		}
	}
	var want []phaseCall
	for round := 0; round < rounds; round++ {
		want = append(want,
			phaseCall{round, PhaseHide},
			phaseCall{round, PhaseShuffle},
			phaseCall{round, PhaseReshare},
		)
	}
	want = append(want, phaseCall{rounds, PhaseDone})
	for j, tr := range trs {
		if len(tr.calls) != len(want) {
			t.Fatalf("party %d announced %v, want %v", j, tr.calls, want)
		}
		for i := range want {
			if tr.calls[i] != want[i] {
				t.Fatalf("party %d call %d = %v, want %v", j, i, tr.calls[i], want[i])
			}
		}
	}
}
