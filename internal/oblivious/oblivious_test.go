package oblivious

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

var (
	keyOnce sync.Once
	testKey *ahe.DGKPrivateKey
	keyErr  error
)

func dgk(t *testing.T) *ahe.DGKPrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey, keyErr = ahe.GenerateDGK(768, 32) })
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return testKey
}

func TestCombinations(t *testing.T) {
	got := Combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Combinations(4,2) = %v", got)
			}
		}
	}
	if len(Combinations(7, 4)) != 35 {
		t.Fatal("C(7,4) != 35")
	}
	if Combinations(3, 5) != nil {
		t.Fatal("t > r should be nil")
	}
}

func TestHiders(t *testing.T) {
	if Hiders(3) != 2 || Hiders(7) != 4 || Hiders(2) != 2 {
		t.Fatalf("Hiders: %d %d %d", Hiders(3), Hiders(7), Hiders(2))
	}
}

// makeSharedState shares `values` among r shufflers (plain shuffle).
func makeSharedState(values []uint64, r int, mod secretshare.Modulus, src secretshare.Source) *State {
	return &State{
		Plain:     secretshare.SplitVector(values, r, mod, src),
		EncHolder: -1,
	}
}

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestPlainShufflePreservesMultiset(t *testing.T) {
	mod := secretshare.NewModulus(32)
	src := rng.New(1)
	for _, r := range []int{2, 3, 5} {
		values := make([]uint64, 200)
		for i := range values {
			values[i] = uint64(i * i % 1009)
		}
		st := makeSharedState(values, r, mod, src)
		if err := Run(st, Config{Mod: mod, Source: src}); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		out, err := Reveal(st, mod, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantSorted := sortedCopy(values)
		gotSorted := sortedCopy(out)
		for i := range wantSorted {
			if gotSorted[i] != wantSorted[i] {
				t.Fatalf("r=%d: multiset changed", r)
			}
		}
	}
}

func TestPlainShuffleActuallyPermutes(t *testing.T) {
	mod := secretshare.NewModulus(32)
	src := rng.New(2)
	values := make([]uint64, 500)
	for i := range values {
		values[i] = uint64(i)
	}
	st := makeSharedState(values, 3, mod, src)
	if err := Run(st, Config{Mod: mod, Source: src}); err != nil {
		t.Fatal(err)
	}
	out, _ := Reveal(st, mod, nil)
	same := 0
	for i := range out {
		if out[i] == values[i] {
			same++
		}
	}
	// A uniform permutation of 500 elements has ~1 fixed point.
	if same > 25 {
		t.Fatalf("%d/500 elements unmoved — not a real shuffle", same)
	}
}

func TestEOSPreservesMultisetAndHidesHolder(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	src := rng.New(3)
	const r, n = 3, 40
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(1000 + i)
	}
	// User-side setup per Algorithm 1: split into r shares, encrypt
	// the last share vector.
	shares := secretshare.SplitVector(values, r, mod, src)
	enc := make([]*ahe.Ciphertext, n)
	for i, s := range shares[r-1] {
		c, err := key.Encrypt(s)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	shares[r-1] = nil
	st := &State{Plain: shares, Enc: enc, EncHolder: r - 1}

	if err := Run(st, Config{Mod: mod, Source: src, Pub: key.DGKPublicKey}); err != nil {
		t.Fatal(err)
	}
	if st.EncHolder < 0 || st.EncHolder >= r {
		t.Fatalf("EncHolder = %d after EOS", st.EncHolder)
	}
	out, err := Reveal(st, mod, key)
	if err != nil {
		t.Fatal(err)
	}
	wantSorted := sortedCopy(values)
	gotSorted := sortedCopy(out)
	for i := range wantSorted {
		if gotSorted[i] != wantSorted[i] {
			t.Fatalf("EOS changed the multiset: %v vs %v", gotSorted[:5], wantSorted[:5])
		}
	}
	// Even all shufflers colluding can only reconstruct the plaintext
	// parts; combined they differ from the real values (the encrypted
	// share is missing).
	colluded := make([]uint64, n)
	for j, p := range st.Plain {
		if j == st.EncHolder {
			continue
		}
		for i := range colluded {
			colluded[i] = mod.Add(colluded[i], p[i])
		}
	}
	match := 0
	valueSet := map[uint64]bool{}
	for _, v := range values {
		valueSet[v] = true
	}
	for _, c := range colluded {
		if valueSet[c] {
			match++
		}
	}
	if match > n/4 {
		t.Fatalf("colluding shufflers reconstructed %d/%d values", match, n)
	}
}

func TestEOSWithPaillier(t *testing.T) {
	key, err := ahe.GeneratePaillier(512, 32)
	if err != nil {
		t.Fatal(err)
	}
	mod := secretshare.NewModulus(32)
	src := rng.New(4)
	const r, n = 3, 15
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i + 7)
	}
	shares := secretshare.SplitVector(values, r, mod, src)
	enc := make([]*ahe.Ciphertext, n)
	for i, s := range shares[0] {
		c, err := key.Encrypt(s)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	shares[0] = nil
	st := &State{Plain: shares, Enc: enc, EncHolder: 0}
	if err := Run(st, Config{Mod: mod, Source: src, Pub: key.PaillierPublicKey}); err != nil {
		t.Fatal(err)
	}
	out, err := Reveal(st, mod, key)
	if err != nil {
		t.Fatal(err)
	}
	wantSorted := sortedCopy(values)
	gotSorted := sortedCopy(out)
	for i := range wantSorted {
		if gotSorted[i] != wantSorted[i] {
			t.Fatal("Paillier EOS changed the multiset")
		}
	}
}

func TestRunValidation(t *testing.T) {
	mod := secretshare.NewModulus(32)
	src := rng.New(5)
	cases := map[string]*State{
		"too few parties": {Plain: [][]uint64{{1}}, EncHolder: -1},
		"ragged lengths":  {Plain: [][]uint64{{1, 2}, {3}}, EncHolder: -1},
		"enc no holder":   {Plain: [][]uint64{{1}, {2}}, Enc: make([]*ahe.Ciphertext, 1), EncHolder: -1},
		"holder range":    {Plain: [][]uint64{{1}, {2}}, Enc: make([]*ahe.Ciphertext, 1), EncHolder: 5},
	}
	for name, st := range cases {
		if err := Run(st, Config{Mod: mod, Source: src}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Encrypted state without a public key.
	st := &State{
		Plain:     [][]uint64{{1}, nil},
		Enc:       make([]*ahe.Ciphertext, 1),
		EncHolder: 1,
	}
	if err := Run(st, Config{Mod: mod, Source: src}); err == nil {
		t.Error("encrypted state without pub key should error")
	}
	// Missing source.
	st2 := makeSharedState([]uint64{1, 2}, 2, mod, src)
	if err := Run(st2, Config{Mod: mod}); err == nil {
		t.Error("missing source should error")
	}
}

func TestRevealRequiresKeyForEncrypted(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	c, err := key.Encrypt(5)
	if err != nil {
		t.Fatal(err)
	}
	st := &State{
		Plain:     [][]uint64{{1}, nil},
		Enc:       []*ahe.Ciphertext{c},
		EncHolder: 1,
	}
	if _, err := Reveal(st, mod, nil); err == nil {
		t.Fatal("Reveal without key should error")
	}
}

func TestMeterAccountsCommunication(t *testing.T) {
	mod := secretshare.NewModulus(32)
	src := rng.New(6)
	var meter transport.Meter
	values := make([]uint64, 100)
	st := makeSharedState(values, 3, mod, src)
	if err := Run(st, Config{Mod: mod, Source: src, Meter: &meter}); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, p := range meter.Parties() {
		total += meter.Stats(p).SentBytes
	}
	if total == 0 {
		t.Fatal("no communication recorded")
	}
	// Rough shape: C(3,2)=3 rounds, each with seeker->hiders (2 vectors)
	// and hiders->all (6 vectors) of 800 bytes each.
	if total < 3*8*100 {
		t.Fatalf("implausibly low communication: %d bytes", total)
	}
}

func TestEOSSkipRerandomizeStillCorrect(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	src := rng.New(17)
	const r, n = 3, 25
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i * 3)
	}
	shares := secretshare.SplitVector(values, r, mod, src)
	enc := make([]*ahe.Ciphertext, n)
	for i, s := range shares[0] {
		c, err := key.Encrypt(s)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	shares[0] = nil
	st := &State{Plain: shares, Enc: enc, EncHolder: 0}
	err := Run(st, Config{
		Mod: mod, Source: src, Pub: key.DGKPublicKey, SkipRerandomize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Reveal(st, mod, key)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedCopy(out)
	want := sortedCopy(values)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("fast mode changed the multiset")
		}
	}
}

func TestRevealParallelMatchesSequential(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	src := rng.New(18)
	const r, n = 3, 33
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i * 11)
	}
	shares := secretshare.SplitVector(values, r, mod, src)
	enc := make([]*ahe.Ciphertext, n)
	for i, s := range shares[2] {
		c, err := key.Encrypt(s)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	shares[2] = nil
	st := &State{Plain: shares, Enc: enc, EncHolder: 2}
	seq, err := Reveal(st, mod, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 100} {
		par, err := RevealParallel(st, mod, key, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: mismatch at %d", workers, i)
			}
		}
	}
}

// TestRevealParallelEmptyState: a collection with zero reports must
// reveal to an empty vector, not spin up workers or index out of range.
func TestRevealParallelEmptyState(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	st := &State{Plain: [][]uint64{{}, {}, nil}, Enc: nil, EncHolder: 2}
	for _, workers := range []int{0, 1, 8} {
		out, err := RevealParallel(st, mod, key, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 0 {
			t.Fatalf("workers=%d: got %d words from an empty state", workers, len(out))
		}
	}
}

var errInjectedDecrypt = errors.New("oblivious test: injected decrypt fault")

// failingKey wraps a real private key and fails every Decrypt after
// the first failAt calls — a mid-chunk fault injected into the reveal
// fan-out.
type failingKey struct {
	ahe.PrivateKey
	mu     sync.Mutex
	calls  int
	failAt int
	err    error
}

func (k *failingKey) Decrypt(c *ahe.Ciphertext) (uint64, error) {
	k.mu.Lock()
	n := k.calls
	k.calls++
	k.mu.Unlock()
	if n >= k.failAt {
		return 0, k.err
	}
	return k.PrivateKey.Decrypt(c)
}

// TestRevealParallelDecryptErrorPropagates: when one worker's Decrypt
// fails mid-chunk, RevealParallel must return that error — not
// deadlock waiting on the failed worker, not panic, not report partial
// sums as success. Runs under -race in CI to catch unsynchronized
// error plumbing.
func TestRevealParallelDecryptErrorPropagates(t *testing.T) {
	key := dgk(t)
	mod := secretshare.NewModulus(32)
	src := rng.New(44)
	const r, n = 3, 24
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i)
	}
	shares := secretshare.SplitVector(values, r, mod, src)
	enc := make([]*ahe.Ciphertext, n)
	for i, s := range shares[2] {
		c, err := key.Encrypt(s)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	shares[2] = nil
	wantErr := errInjectedDecrypt
	for _, workers := range []int{1, 2, 4, n + 5} {
		for _, failAt := range []int{0, 1, n / 2, n - 1} {
			st := &State{Plain: shares, Enc: enc, EncHolder: 2}
			fk := &failingKey{PrivateKey: key, failAt: failAt, err: wantErr}
			if _, err := RevealParallel(st, mod, fk, workers); err != wantErr {
				t.Fatalf("workers=%d failAt=%d: got %v, want the injected error", workers, failAt, err)
			}
		}
	}
}

func TestRoundsOverride(t *testing.T) {
	mod := secretshare.NewModulus(32)
	src := rng.New(7)
	values := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	st := makeSharedState(values, 5, mod, src)
	// One round only (ablation mode) — multiset must still hold.
	if err := Run(st, Config{Mod: mod, Source: src, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	out, _ := Reveal(st, mod, nil)
	if len(out) != len(values) {
		t.Fatal("length changed")
	}
	got := sortedCopy(out)
	want := sortedCopy(values)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("multiset changed with Rounds=1")
		}
	}
}
