package oblivious

// Worker-pool layer for the shuffler-side hot loops (DESIGN.md §14).
// The three ciphertext passes of a hide-and-seek round —
// rerandomizeAll, addPlainAll, and stage B of splitEncrypted — fan out
// over Config.Workers goroutines in contiguous, order-preserving
// chunks, the same decomposition RevealParallel already uses for the
// server's decrypt phase. Determinism is preserved by construction:
// every draw from the deterministic Source happens on the caller's
// goroutine in serial element order before any worker starts, so the
// only randomness inside a worker is crypto/rand (rerandomizer
// nonces), which never reaches a plaintext or an estimate.

import "sync"

// parFor splits [0, n) into at most `workers` contiguous chunks and
// runs fn(w, lo, hi) on one goroutine per chunk. workers <= 1 (or a
// chunk count of 1) runs fn inline on the caller's goroutine, so the
// serial path pays no goroutine or scheduling overhead. fn must touch
// only its own [lo, hi) window; the first error (lowest worker index)
// wins.
func parFor(n, workers int, fn func(w, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, 0, n)
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
