package oblivious

// Tests for the worker-pooled, chunk-streamed EOS paths (DESIGN.md
// §14): parFor's chunking and error discipline, the bit-identity of
// the parallel simulator against the serial reference, the chunked
// distributed engine against the unchunked one, and the stream
// reassembly edge cases of recvVector. CI runs the cluster-level
// conformance gate under -race; these pin the engine-level invariants.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

func TestParForChunking(t *testing.T) {
	called := 0
	if err := parFor(0, 4, func(_, _, _ int) error { called++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := parFor(-3, 4, func(_, _, _ int) error { called++; return nil }); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Fatalf("parFor called fn %d times on empty ranges", called)
	}

	// Every worker count must cover [0, n) exactly once, in contiguous
	// non-overlapping chunks.
	const n = 17
	for _, workers := range []int{0, 1, 2, 3, 4, n, n + 5} {
		var mu sync.Mutex
		hits := make([]int, n)
		if err := parFor(n, workers, func(_, lo, hi int) error {
			if lo < 0 || hi > n || lo >= hi {
				return fmt.Errorf("bad chunk [%d, %d)", lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				hits[i]++
			}
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, h)
			}
		}
	}
}

func TestParForLowestErrorWins(t *testing.T) {
	errA := errors.New("worker 1 failed")
	errB := errors.New("worker 3 failed")
	// 4 workers over 8 elements: chunks are [0,2) [2,4) [4,6) [6,8).
	err := parFor(8, 4, func(w, _, _ int) error {
		switch w {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("parFor returned %v, want the lowest-index worker's error %v", err, errA)
	}
}

// buildEncState deterministically builds an EOS state: r share vectors
// of the given values, the last one encrypted. All randomness comes
// from the build source, so two calls yield bit-identical states.
func buildEncState(t *testing.T, values []uint64, r int, mod secretshare.Modulus, pub ahe.PublicKey, build *rng.Rand) *State {
	t.Helper()
	vectors := secretshare.SplitVector(values, r, mod, build)
	enc := make([]*ahe.Ciphertext, len(values))
	for i, w := range vectors[r-1] {
		c, err := pub.Encrypt(w)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = c
	}
	st := &State{Plain: vectors, Enc: enc, EncHolder: r - 1}
	st.Plain[r-1] = nil
	return st
}

// TestRunParallelMatchesSerial is the simulator-level bit-identity
// claim of Config.Workers: for a fixed seed, the parallel engine's
// plaintext shares, holder choice, and revealed (ordered) output are
// identical to the serial engine's — only the ciphertext group
// elements differ, and those never reach a plaintext.
func TestRunParallelMatchesSerial(t *testing.T) {
	const (
		r    = 3
		n    = 33
		seed = 41
	)
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	mod := secretshare.NewModulus(64)
	values := make([]uint64, n)
	src := rng.New(7)
	for i := range values {
		values[i] = src.Uint64()
	}
	run := func(workers int) (*State, []uint64) {
		st := buildEncState(t, values, r, mod, ahe.PublicKey(priv), rng.New(1))
		if err := Run(st, Config{Mod: mod, Source: rng.New(seed), Pub: ahe.PublicKey(priv), Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := Reveal(st, mod, priv)
		if err != nil {
			t.Fatalf("workers=%d reveal: %v", workers, err)
		}
		return st, out
	}
	stSerial, outSerial := run(0)
	stPar, outPar := run(4)
	if stPar.EncHolder != stSerial.EncHolder {
		t.Fatalf("holders diverged: serial %d, parallel %d", stSerial.EncHolder, stPar.EncHolder)
	}
	for j := range stSerial.Plain {
		if fmt.Sprint(stPar.Plain[j]) != fmt.Sprint(stSerial.Plain[j]) {
			t.Fatalf("party %d plaintext shares diverged under Workers=4", j)
		}
	}
	// Ordered comparison: the permutation itself must match, not just
	// the multiset.
	if fmt.Sprint(outPar) != fmt.Sprint(outSerial) {
		t.Fatalf("revealed outputs diverged:\nserial   %v\nparallel %v", outSerial, outPar)
	}
}

// runPartiesOpt is runParties with the parallel knobs exposed.
func runPartiesOpt(t *testing.T, r int, vectors [][]uint64, enc []*ahe.Ciphertext, encHolder int, pub ahe.PublicKey, seed uint64, workers, chunkWords int) ([][]uint64, []([]*ahe.Ciphertext), []error) {
	t.Helper()
	pipes := newPipes(r)
	mod := secretshare.NewModulus(64)
	outPlain := make([][]uint64, r)
	outEnc := make([][]*ahe.Ciphertext, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	for j := 0; j < r; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			cfg := PartyConfig{
				Index:      j,
				Parties:    r,
				Mod:        mod,
				Source:     rng.Substream(seed, uint64(j)),
				Pub:        pub,
				Workers:    workers,
				ChunkWords: chunkWords,
			}
			var plain []uint64
			var e []*ahe.Ciphertext
			if j == encHolder {
				e = enc
			} else {
				plain = append([]uint64(nil), vectors[j]...)
			}
			outPlain[j], outEnc[j], errs[j] = RunParty(cfg, &chanTransport{me: j, pipes: pipes}, plain, e)
		}(j)
	}
	wg.Wait()
	return outPlain, outEnc, errs
}

// TestRunPartyChunkedMatchesSerial is the distributed-engine
// bit-identity claim: every (Workers, ChunkWords) combination —
// including chunk sizes that leave a short tail window — produces the
// same plaintext shares, the same final holder, and the same ordered
// reveal as the serial unchunked engine, for a fixed seed.
func TestRunPartyChunkedMatchesSerial(t *testing.T) {
	const (
		r    = 3
		n    = 20
		seed = 17
	)
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub := ahe.PublicKey(priv)
	mod := secretshare.NewModulus(64)
	values := make([]uint64, n)
	src := rng.New(23)
	for i := range values {
		values[i] = src.Uint64()
	}
	vectors := secretshare.SplitVector(values, r, mod, src)
	encHolder := r - 1
	mkEnc := func() []*ahe.Ciphertext {
		enc := make([]*ahe.Ciphertext, n)
		for i, w := range vectors[encHolder] {
			c, err := pub.Encrypt(w)
			if err != nil {
				t.Fatal(err)
			}
			enc[i] = c
		}
		return enc
	}
	reveal := func(outPlain [][]uint64, outEnc [][]*ahe.Ciphertext) ([]uint64, int) {
		st := &State{Plain: make([][]uint64, r), EncHolder: -1}
		for j := 0; j < r; j++ {
			if outEnc[j] != nil {
				st.Enc = outEnc[j]
				st.EncHolder = j
			} else {
				st.Plain[j] = outPlain[j]
			}
		}
		out, err := Reveal(st, mod, priv)
		if err != nil {
			t.Fatal(err)
		}
		return out, st.EncHolder
	}

	refPlain, refEnc, errs := runPartiesOpt(t, r, vectors, mkEnc(), encHolder, pub, seed, 0, 0)
	for j, err := range errs {
		if err != nil {
			t.Fatalf("reference party %d: %v", j, err)
		}
	}
	refOut, refHolder := reveal(refPlain, refEnc)

	for _, workers := range []int{1, 4} {
		for _, chunk := range []int{0, 3, 7, n, 2 * n} {
			name := fmt.Sprintf("workers=%d/chunk=%d", workers, chunk)
			outPlain, outEnc, errs := runPartiesOpt(t, r, vectors, mkEnc(), encHolder, pub, seed, workers, chunk)
			for j, err := range errs {
				if err != nil {
					t.Fatalf("%s party %d: %v", name, j, err)
				}
			}
			out, holder := reveal(outPlain, outEnc)
			if holder != refHolder {
				t.Fatalf("%s: holder %d, want %d", name, holder, refHolder)
			}
			for j := 0; j < r; j++ {
				if fmt.Sprint(outPlain[j]) != fmt.Sprint(refPlain[j]) {
					t.Fatalf("%s: party %d plaintext shares diverged", name, j)
				}
			}
			if fmt.Sprint(out) != fmt.Sprint(refOut) {
				t.Fatalf("%s: revealed output diverged:\n got %v\nwant %v", name, out, refOut)
			}
		}
	}
}

// TestSendVectorRecvVectorRoundTrip: a chunk-streamed plaintext vector
// reassembles exactly, whatever the window size — including windows
// that divide the length evenly (no empty trailing fragment).
func TestSendVectorRecvVectorRoundTrip(t *testing.T) {
	words := make([]uint64, 10)
	for i := range words {
		words[i] = uint64(i) * 3
	}
	for _, chunk := range []int{0, 1, 3, 5, 10, 99} {
		pipes := newPipes(2)
		tr0 := &chanTransport{me: 0, pipes: pipes}
		tr1 := &chanTransport{me: 1, pipes: pipes}
		errc := make(chan error, 1)
		go func() { errc <- sendVector(tr0, 1, 2, chunk, words) }()
		m, err := recvVector(tr1, 0, 2, len(words))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("chunk=%d send: %v", chunk, err)
		}
		if m.Kind != MsgPlain || m.More {
			t.Fatalf("chunk=%d: reassembled message %+v", chunk, m)
		}
		if fmt.Sprint(m.Words) != fmt.Sprint(words) {
			t.Fatalf("chunk=%d: got %v, want %v", chunk, m.Words, words)
		}
	}
}

// TestRecvVectorRejectsMalformedStreams: the reassembler must fail
// loudly on protocol violations — a chunk-streamed seed, a kind switch
// mid-stream, a stream that overruns the vector length, and a round
// change mid-stream.
func TestRecvVectorRejectsMalformedStreams(t *testing.T) {
	feed := func(msgs ...Msg) (Msg, error) {
		pipes := newPipes(2)
		for _, m := range msgs {
			pipes[0][1] <- m
		}
		return recvVector(&chanTransport{me: 1, pipes: pipes}, 0, 0, 4)
	}
	if _, err := feed(Msg{Kind: MsgSeed, Seed: 9, More: true}); err == nil {
		t.Fatal("accepted a chunk-streamed permutation seed")
	}
	if _, err := feed(
		Msg{Kind: MsgPlain, Words: []uint64{1}, More: true},
		Msg{Kind: MsgEnc, Enc: []*ahe.Ciphertext{}},
	); err == nil {
		t.Fatal("accepted a kind switch mid-stream")
	}
	if _, err := feed(
		Msg{Kind: MsgPlain, Words: []uint64{1, 2, 3}, More: true},
		Msg{Kind: MsgPlain, Words: []uint64{4, 5}},
	); err == nil {
		t.Fatal("accepted a stream overrunning the vector length")
	}
	if _, err := feed(
		Msg{Kind: MsgPlain, Words: []uint64{1}, More: true},
		Msg{Kind: MsgPlain, Round: 1, Words: []uint64{2}},
	); err == nil {
		t.Fatal("accepted a round change mid-stream")
	}
}
