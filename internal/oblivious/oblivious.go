// Package oblivious implements the resharing-based oblivious shuffle of
// Laur, Willemson & Zhang (§II-C) and the paper's Encrypted Oblivious
// Shuffle (EOS, §VI-A3, Figure 2).
//
// r shufflers each hold one additive share vector of the n values.
// With t = floor(r/2)+1 "hiders" per round, the protocol runs one round
// per t-subset of shufflers (C(r, t) rounds): the r-t seekers reshare
// their vectors to the hiders, the hiders permute everything with a
// jointly agreed permutation, and then reshare back to all r parties.
// After all rounds, no coalition of r-t shufflers knows the composite
// permutation.
//
// EOS strengthens this: one of the r share vectors is encrypted under
// the server's additively homomorphic key, so even all r shufflers
// colluding cannot reconstruct the values — yet the shares can still be
// split, accumulated and permuted, processed under AHE (Figure 2).
package oblivious

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"shuffledp/internal/ahe"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

// Config parameterizes a shuffle run.
type Config struct {
	// Mod is the share ring Z_{2^l}.
	Mod secretshare.Modulus
	// Source provides the shufflers' randomness.
	Source secretshare.Source
	// Pub is the server's AHE key; required iff the state carries an
	// encrypted vector.
	Pub ahe.PublicKey
	// Meter optionally accounts communication and computation per
	// shuffler ("shuffler-0", "shuffler-1", ...).
	Meter *transport.Meter
	// Rounds overrides the number of hide-and-seek rounds (0 means the
	// full C(r, t), the value required for the security guarantee; the
	// override exists for the ablation benchmarks).
	Rounds int
	// SkipRerandomize omits the per-element ciphertext refresh after
	// each permutation and split. The paper's prototype accounts only
	// homomorphic additions for the shufflers (Table III); this knob
	// reproduces that cost model. It weakens unlinkability: a party
	// seeing the same ciphertext before and after a round can track
	// that position, so leave it off outside benchmarks.
	SkipRerandomize bool
	// Workers fans the per-element AHE passes (rerandomize, encrypted
	// split, plaintext fold) out over this many goroutines in
	// contiguous order-preserving chunks. <= 1 runs serially (the
	// default and the reference). Every deterministic Source draw
	// happens in serial element order regardless of Workers, so the
	// share plaintexts — and therefore the estimates — are
	// bit-identical to the serial path for a fixed seed; only the
	// crypto/rand rerandomizer nonces differ (DESIGN.md §14).
	Workers int
}

// State is the shufflers' joint state: party j holds Plain[j], except
// the EncHolder (if any), who holds Enc.
type State struct {
	// Plain[j] is shuffler j's plaintext share vector (nil for the
	// encrypted holder).
	Plain [][]uint64
	// Enc is the single AHE-encrypted share vector, held by
	// Plain[EncHolder]'s owner. Nil for a plain oblivious shuffle.
	Enc []*ahe.Ciphertext
	// EncHolder is the index of the shuffler holding Enc, or -1.
	EncHolder int
}

// NumParties returns r.
func (st *State) NumParties() int { return len(st.Plain) }

// Len returns the vector length n.
func (st *State) Len() int {
	if st.EncHolder >= 0 {
		return len(st.Enc)
	}
	for _, p := range st.Plain {
		if p != nil {
			return len(p)
		}
	}
	return 0
}

// Window returns the sub-state over positions [lo, hi) of every share
// vector — the per-partition slice an analyzer shard reveals in the
// sharded cluster (internal/cluster PartitionPlan.Cuts). The windows
// of a partition reveal to exactly the corresponding windows of the
// full state's reveal, since combining and decrypting are element-wise.
// The returned state shares backing arrays with st.
func (st *State) Window(lo, hi int) (*State, error) {
	if lo < 0 || hi < lo || hi > st.Len() {
		return nil, fmt.Errorf("oblivious: window [%d, %d) out of range for length %d", lo, hi, st.Len())
	}
	w := &State{Plain: make([][]uint64, len(st.Plain)), EncHolder: st.EncHolder}
	for j, p := range st.Plain {
		if p != nil {
			w.Plain[j] = p[lo:hi]
		}
	}
	if st.Enc != nil {
		w.Enc = st.Enc[lo:hi]
	}
	return w, nil
}

func (st *State) validate(cfg Config) error {
	r := len(st.Plain)
	if r < 2 {
		return errors.New("oblivious: need at least 2 shufflers")
	}
	n := st.Len()
	for j, p := range st.Plain {
		if j == st.EncHolder {
			if p != nil {
				return fmt.Errorf("oblivious: encrypted holder %d also has a plaintext vector", j)
			}
			continue
		}
		if len(p) != n {
			return fmt.Errorf("oblivious: shuffler %d vector has length %d, want %d", j, len(p), n)
		}
	}
	if st.EncHolder >= 0 {
		if st.EncHolder >= r {
			return errors.New("oblivious: EncHolder out of range")
		}
		if len(st.Enc) != n {
			return errors.New("oblivious: encrypted vector length mismatch")
		}
		if cfg.Pub == nil {
			return errors.New("oblivious: encrypted state requires an AHE public key")
		}
	} else if st.Enc != nil {
		return errors.New("oblivious: Enc set but EncHolder = -1")
	}
	if cfg.Source == nil {
		return errors.New("oblivious: Config.Source is required")
	}
	return nil
}

// Hiders returns t = floor(r/2)+1, the hider count (§II-C).
func Hiders(r int) int { return r/2 + 1 }

// Combinations enumerates all t-subsets of [0, r) in lexicographic
// order — the hide-and-seek partitions.
func Combinations(r, t int) [][]int {
	if t < 0 || t > r {
		return nil
	}
	var out [][]int
	comb := make([]int, t)
	for i := range comb {
		comb[i] = i
	}
	for {
		out = append(out, append([]int(nil), comb...))
		// Advance.
		i := t - 1
		for i >= 0 && comb[i] == r-t+i {
			i--
		}
		if i < 0 {
			return out
		}
		comb[i]++
		for j := i + 1; j < t; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}

func shufflerName(j int) string { return fmt.Sprintf("shuffler-%d", j) }

// Run executes the oblivious shuffle (EOS when the state carries an
// encrypted vector), mutating st in place. On return the share vectors
// represent the same multiset of values in a permuted order, and (for
// EOS) EncHolder points at the final ciphertext holder.
func Run(st *State, cfg Config) error {
	if err := st.validate(cfg); err != nil {
		return err
	}
	r := st.NumParties()
	t := Hiders(r)
	partitions := Combinations(r, t)
	rounds := cfg.Rounds
	if rounds <= 0 || rounds > len(partitions) {
		rounds = len(partitions)
	}
	for round := 0; round < rounds; round++ {
		if err := runRound(st, cfg, partitions[round]); err != nil {
			return fmt.Errorf("oblivious: round %d: %w", round, err)
		}
	}
	return nil
}

// runRound performs one hide-and-seek round with the given hider set.
func runRound(st *State, cfg Config, hiders []int) error {
	r := st.NumParties()
	n := st.Len()
	t := len(hiders)
	isHider := make([]bool, r)
	for _, h := range hiders {
		isHider[h] = true
	}

	// --- Hide phase: seekers split their vectors among the hiders. ---
	// acc[h] accumulates hider h's plaintext mass; encAcc is the single
	// ciphertext vector in flight (held by encAt, a hider index).
	acc := make([][]uint64, r)
	for _, h := range hiders {
		if h == st.EncHolder {
			acc[h] = make([]uint64, n)
		} else {
			acc[h] = append([]uint64(nil), st.Plain[h]...)
		}
	}
	var encAcc []*ahe.Ciphertext
	encAt := -1
	if st.EncHolder >= 0 && isHider[st.EncHolder] {
		encAcc = st.Enc
		encAt = st.EncHolder
	}

	for s := 0; s < r; s++ {
		if isHider[s] {
			continue
		}
		if s == st.EncHolder {
			// Encrypted seeker: t-1 plaintext parts + 1 ciphertext
			// remainder sent to a random hider, who becomes the
			// ciphertext holder for this round.
			target := hiders[rng.New(cfg.Source.Uint64()).Intn(t)]
			parts, rem, err := splitEncrypted(st.Enc, t, cfg)
			if err != nil {
				return err
			}
			pi := 0
			for _, h := range hiders {
				if h == target {
					continue
				}
				addInto(acc[h], parts[pi], cfg.Mod)
				cfg.Meter.Send(shufflerName(s), shufflerName(h), 8*n)
				pi++
			}
			encAcc = rem
			encAt = target
			cfg.Meter.Send(shufflerName(s), shufflerName(target), cfg.Pub.CiphertextBytes()*n)
			continue
		}
		// Plain seeker: t plaintext parts.
		parts := splitPlain(st.Plain[s], t, cfg)
		for i, h := range hiders {
			addInto(acc[h], parts[i], cfg.Mod)
			cfg.Meter.Send(shufflerName(s), shufflerName(h), 8*n)
		}
	}

	// The ciphertext hider also accumulated plaintext mass from the
	// seekers; fold it into the ciphertext vector (AHE AddPlain) so it
	// holds exactly one vector — the Figure 2 "Hide" column.
	if encAt >= 0 {
		var err error
		cfg.Meter.Track(shufflerName(encAt), func() {
			err = addPlainAll(encAcc, acc[encAt], cfg.Mod, cfg.Pub, cfg.Workers)
		})
		if err != nil {
			return err
		}
		acc[encAt] = nil
	}

	// --- Shuffle phase: hiders apply an agreed permutation. ---
	// The first hider samples it and the others learn it via a shared
	// seed (32 bytes on the wire).
	seed := cfg.Source.Uint64()
	perm := rng.New(seed).Perm(n)
	for _, h := range hiders[1:] {
		cfg.Meter.Send(shufflerName(hiders[0]), shufflerName(h), 32)
	}
	for _, h := range hiders {
		if acc[h] == nil {
			continue // ciphertext hider, permuted below
		}
		cfg.Meter.Track(shufflerName(h), func() {
			acc[h] = applyPermUint64(acc[h], perm)
		})
	}
	if encAt >= 0 {
		var err error
		cfg.Meter.Track(shufflerName(encAt), func() {
			encAcc = applyPermCipher(encAcc, perm)
			// Refresh ciphertexts so positions are unlinkable across
			// the permutation.
			if !cfg.SkipRerandomize {
				err = rerandomizeAll(encAcc, cfg.Pub, cfg.Workers)
			}
		})
		if err != nil {
			return err
		}
	}

	// --- Reshare phase: each hider splits its vector to all parties. ---
	newPlain := make([][]uint64, r)
	for j := 0; j < r; j++ {
		newPlain[j] = make([]uint64, n)
	}
	var newEnc []*ahe.Ciphertext
	newEncHolder := -1
	for _, h := range hiders {
		if h == encAt {
			continue // handled below
		}
		parts := splitPlain(acc[h], r, cfg)
		for j := 0; j < r; j++ {
			addInto(newPlain[j], parts[j], cfg.Mod)
			if j != h {
				cfg.Meter.Send(shufflerName(h), shufflerName(j), 8*n)
			}
		}
	}
	if encAt >= 0 {
		// Ciphertext hider: r-1 plaintext parts + ciphertext remainder
		// to a random party.
		target := rng.New(cfg.Source.Uint64() ^ 0x5bd1e995).Intn(r)
		parts, rem, err := splitEncrypted(encAcc, r, cfg)
		if err != nil {
			return err
		}
		pi := 0
		for j := 0; j < r; j++ {
			if j == target {
				continue
			}
			addInto(newPlain[j], parts[pi], cfg.Mod)
			if j != encAt {
				cfg.Meter.Send(shufflerName(encAt), shufflerName(j), 8*n)
			}
			pi++
		}
		newEnc = rem
		newEncHolder = target
		if target != encAt {
			cfg.Meter.Send(shufflerName(encAt), shufflerName(target), cfg.Pub.CiphertextBytes()*n)
		}
	}

	// Fold the new ciphertext holder's plaintext reshare pieces into
	// the ciphertext vector so each party holds exactly one vector.
	if newEncHolder >= 0 {
		var err error
		cfg.Meter.Track(shufflerName(newEncHolder), func() {
			err = addPlainAll(newEnc, newPlain[newEncHolder], cfg.Mod, cfg.Pub, cfg.Workers)
		})
		if err != nil {
			return err
		}
		newPlain[newEncHolder] = nil
	}
	st.Plain = newPlain
	st.Enc = newEnc
	st.EncHolder = newEncHolder
	return nil
}

// splitPlain additively splits vec into k share vectors.
func splitPlain(vec []uint64, k int, cfg Config) [][]uint64 {
	return secretshare.SplitVector(vec, k, cfg.Mod, cfg.Source)
}

// splitEncrypted splits an encrypted vector into k-1 uniform plaintext
// vectors and one ciphertext remainder: rem_i = enc_i - sum(parts_i),
// computed homomorphically and rerandomized. Stage A (the
// deterministic Source draws) runs serially in element order no
// matter what cfg.Workers says — the bit-identity invariant — and
// stage B (the AHE bill, whose only randomness is crypto/rand) fans
// out over the workers. The remainder reuses the input ciphertext
// objects as its buffers, so the engine-owned vector is transformed
// in place and the parallel path allocates no fresh ciphertexts.
func splitEncrypted(enc []*ahe.Ciphertext, k int, cfg Config) (parts [][]uint64, rem []*ahe.Ciphertext, err error) {
	n := len(enc)
	parts = make([][]uint64, k-1)
	for i := range parts {
		parts[i] = make([]uint64, n)
	}
	// Stage A: draw all shares and the per-element correction, in the
	// exact order the serial engine draws them.
	negSum := make([]uint64, n)
	for i := 0; i < n; i++ {
		var sum uint64
		for j := range parts {
			s := cfg.Mod.Random(cfg.Source)
			parts[j][i] = s
			sum = cfg.Mod.Add(sum, s)
		}
		negSum[i] = cfg.Mod.Neg(sum)
	}
	// Stage B: subtract and rerandomize, chunked across the workers.
	rem = make([]*ahe.Ciphertext, n)
	copy(rem, enc)
	so, _ := cfg.Pub.(ahe.ScratchOps)
	err = parFor(n, cfg.Workers, func(_, lo, hi int) error {
		if so != nil {
			sc := so.NewScratch()
			for i := lo; i < hi; i++ {
				if err := so.AddPlainInto(rem[i], rem[i], negSum[i], sc); err != nil {
					return err
				}
				if !cfg.SkipRerandomize {
					if err := so.RerandomizeInto(rem[i], rem[i], sc); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for i := lo; i < hi; i++ {
			c, err := cfg.Pub.AddPlain(rem[i], negSum[i])
			if err != nil {
				return err
			}
			if !cfg.SkipRerandomize {
				if c, err = cfg.Pub.Rerandomize(c); err != nil {
					return err
				}
			}
			rem[i] = c
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return parts, rem, nil
}

func addInto(dst, src []uint64, mod secretshare.Modulus) {
	for i := range dst {
		dst[i] = mod.Add(dst[i], src[i])
	}
}

// addPlainAll folds a plaintext vector into a ciphertext vector,
// reducing each addend into the share ring first. The fold is
// deterministic given its inputs, so the worker fan-out is a pure
// latency win; with a ScratchOps key the ciphertexts are updated in
// place through per-worker scratch.
func addPlainAll(enc []*ahe.Ciphertext, plain []uint64, mod secretshare.Modulus, pub ahe.PublicKey, workers int) error {
	so, _ := pub.(ahe.ScratchOps)
	return parFor(len(enc), workers, func(_, lo, hi int) error {
		if so != nil {
			sc := so.NewScratch()
			for i := lo; i < hi; i++ {
				if err := so.AddPlainInto(enc[i], enc[i], mod.Reduce(plain[i]), sc); err != nil {
					return err
				}
			}
			return nil
		}
		for i := lo; i < hi; i++ {
			c, err := pub.AddPlain(enc[i], mod.Reduce(plain[i]))
			if err != nil {
				return err
			}
			enc[i] = c
		}
		return nil
	})
}

// rerandomizeAll refreshes every ciphertext. Its randomness is all
// crypto/rand (pool or inline), so chunk order across workers cannot
// influence any plaintext.
func rerandomizeAll(enc []*ahe.Ciphertext, pub ahe.PublicKey, workers int) error {
	so, _ := pub.(ahe.ScratchOps)
	return parFor(len(enc), workers, func(_, lo, hi int) error {
		if so != nil {
			sc := so.NewScratch()
			for i := lo; i < hi; i++ {
				if err := so.RerandomizeInto(enc[i], enc[i], sc); err != nil {
					return err
				}
			}
			return nil
		}
		for i := lo; i < hi; i++ {
			c, err := pub.Rerandomize(enc[i])
			if err != nil {
				return err
			}
			enc[i] = c
		}
		return nil
	})
}

func applyPermUint64(vec []uint64, perm []int) []uint64 {
	out := make([]uint64, len(vec))
	for i, p := range perm {
		out[i] = vec[p]
	}
	return out
}

func applyPermCipher(vec []*ahe.Ciphertext, perm []int) []*ahe.Ciphertext {
	out := make([]*ahe.Ciphertext, len(vec))
	for i, p := range perm {
		out[i] = vec[p]
	}
	return out
}

// Reveal reconstructs the shuffled values: the server decrypts the
// ciphertext vector (if any) and sums all share vectors mod 2^l.
// It does not mutate st.
func Reveal(st *State, mod secretshare.Modulus, priv ahe.PrivateKey) ([]uint64, error) {
	return RevealParallel(st, mod, priv, 1)
}

// RevealParallel is Reveal with the AHE decryptions fanned out over
// `workers` goroutines — the paper's server parallelizes exactly this
// phase ("the decryptions is done in parallel ... we use 32 threads",
// §VII-D). workers < 1 uses GOMAXPROCS.
func RevealParallel(st *State, mod secretshare.Modulus, priv ahe.PrivateKey, workers int) ([]uint64, error) {
	n := st.Len()
	out := make([]uint64, n)
	for j, p := range st.Plain {
		if j == st.EncHolder {
			continue
		}
		addInto(out, p, mod)
	}
	if st.EncHolder < 0 {
		return out, nil
	}
	if priv == nil {
		return nil, errors.New("oblivious: encrypted state requires the private key to reveal")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, c := range st.Enc {
			m, err := priv.Decrypt(c)
			if err != nil {
				return nil, err
			}
			out[i] = mod.Add(out[i], m)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				m, err := priv.Decrypt(st.Enc[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = mod.Add(out[i], m)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
