package oblivious

// Distributed party engine: the same hide-and-seek EOS as Run, but
// executed from the perspective of ONE shuffler exchanging messages
// with its peers instead of a simulator mutating the joint state. The
// round schedule (Hiders, Combinations) and the share arithmetic are
// shared with the in-process simulator, so the two express one
// protocol; what RunParty adds is the message discipline — who sends
// what to whom in each phase, and in which order a party may block on
// its peers. internal/cluster runs R of these engines over real TCP
// connections to form the networked PEOS shuffler tier.
//
// Per round (hider set H, |H| = t, seekers S = [r] \ H):
//
//	hide     seeker s splits its vector into t parts, one per hider
//	         (the encrypted seeker: t-1 plaintext parts plus the
//	         ciphertext remainder to one hider). Hiders accumulate.
//	shuffle  hiders[0] samples a permutation seed and sends it to the
//	         other hiders; every hider applies the permutation (the
//	         ciphertext hider also rerandomizes).
//	reshare  each hider splits its vector into r parts, one per party
//	         (the ciphertext hider: r-1 plaintext parts plus the
//	         remainder to one party, who becomes the next holder).
//	         Every party sums what it received into its new vector.
//
// Message counts per phase are structural — a hider hears from every
// seeker, a non-lead hider hears one seed, everyone hears from every
// hider in reshare — so a party always knows exactly which peers to
// block on, and FIFO order per peer pair is the only transport
// guarantee required. Each phase's sends run concurrently with its
// receives (two parties sending large vectors to each other must not
// deadlock on full transport buffers).

import (
	"errors"
	"fmt"

	"shuffledp/internal/ahe"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// MsgKind discriminates the distributed-shuffle messages.
type MsgKind uint8

const (
	// MsgPlain carries a plaintext share vector (a hide-phase part, a
	// reshare part, or a party's final vector).
	MsgPlain MsgKind = iota + 1
	// MsgEnc carries an AHE ciphertext vector (the encrypted remainder
	// moving to its next holder).
	MsgEnc
	// MsgSeed carries the hiders' joint permutation seed.
	MsgSeed
)

// Msg is one party-to-party message of the distributed oblivious
// shuffle.
type Msg struct {
	// Kind selects which payload field is meaningful.
	Kind MsgKind
	// Round is the hide-and-seek round the message belongs to; both
	// ends validate it so a desynchronized peer is an error, not a
	// corrupted shuffle.
	Round int
	// Words is the plaintext share vector (MsgPlain).
	Words []uint64
	// Enc is the ciphertext vector (MsgEnc).
	Enc []*ahe.Ciphertext
	// Seed is the joint permutation seed (MsgSeed).
	Seed uint64
	// More marks a chunk-streamed fragment: the logical vector
	// continues in the next message from the same sender (same kind,
	// same round). The final fragment — and every unchunked message —
	// has More false, so a legacy single-frame vector is simply the
	// one-fragment case and mixed fleets interoperate.
	More bool
}

// Transport delivers messages between the r parties of one shuffle.
// Implementations must preserve order per (sender, receiver) pair —
// that is the only delivery guarantee the engine relies on. Send may
// block (the engine never sends and receives from the same goroutine
// within a phase); Recv blocks until the next message from that peer
// arrives.
type Transport interface {
	// Send delivers m to party `to`.
	Send(to int, m Msg) error
	// Recv returns the next message sent by party `from`.
	Recv(from int) (Msg, error)
}

// Phase identifies one phase of a hide-and-seek round, in protocol
// order.
type Phase int

// The phases RunParty announces through the Phaser hook.
const (
	// PhaseHide is the split-and-send phase: seekers scatter their
	// vectors to the round's hiders.
	PhaseHide Phase = iota
	// PhaseShuffle is the joint-permutation phase among the hiders.
	PhaseShuffle
	// PhaseReshare is the re-split phase: hiders scatter their
	// accumulated vectors back to all parties.
	PhaseReshare
	// PhaseDone is announced once, after the last round completes.
	PhaseDone
)

// Phaser is optionally implemented by a Transport that wants phase
// boundaries — a networked transport arms per-phase I/O deadlines from
// it, so a peer that keeps a connection alive but never completes a
// phase is cut off. RunParty calls Phase at the start of every phase
// of every round, from the engine goroutine, before any of that
// phase's Send/Recv calls; a phase's concurrent sends are joined
// before the next phase is announced.
type Phaser interface {
	// Phase announces that the engine is entering the given phase of
	// the given round (round == Rounds and PhaseDone at the end).
	Phase(round int, phase Phase)
}

// announce notifies tr of a phase boundary when it cares.
func announce(tr Transport, round int, phase Phase) {
	if p, ok := tr.(Phaser); ok {
		p.Phase(round, phase)
	}
}

// PartyConfig parameterizes one shuffler's engine.
type PartyConfig struct {
	// Index is this party's id in [0, Parties).
	Index int
	// Parties is r, the number of shufflers.
	Parties int
	// Mod is the share ring Z_{2^l}.
	Mod secretshare.Modulus
	// Source is this party's own randomness (its share splits, its
	// permutation seeds when it leads a round, its holder choices).
	// Unlike the simulator's single joint source, every party draws
	// only from its own.
	Source secretshare.Source
	// Pub is the server's AHE key. Every party needs it: any party can
	// become the ciphertext holder through resharing.
	Pub ahe.PublicKey
	// SkipRerandomize reproduces the paper's Table III cost model (see
	// Config.SkipRerandomize for the caveat).
	SkipRerandomize bool
	// Rounds overrides the number of hide-and-seek rounds (0 means the
	// full C(r, t) schedule, required for the security guarantee).
	Rounds int
	// Workers fans this party's per-element AHE passes out over
	// goroutine chunks (see Config.Workers; <= 1 is the serial
	// reference, bit-identical estimates either way).
	Workers int
	// ChunkWords, when > 0, streams the hide/reshare vectors in
	// windows of this many elements: the AHE work on window k+1
	// overlaps the transmission of window k, and each window travels
	// as a Msg fragment with More set (the receiver reassembles).
	// 0 sends every vector as one legacy frame.
	ChunkWords int
}

func (cfg PartyConfig) validate(plain []uint64, enc []*ahe.Ciphertext) error {
	if cfg.Parties < 2 {
		return errors.New("oblivious: need at least 2 shufflers")
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Parties {
		return fmt.Errorf("oblivious: party index %d out of range [0, %d)", cfg.Index, cfg.Parties)
	}
	if cfg.Source == nil {
		return errors.New("oblivious: PartyConfig.Source is required")
	}
	if cfg.Pub == nil {
		return errors.New("oblivious: PartyConfig.Pub is required (any party can become the ciphertext holder)")
	}
	if plain != nil && enc != nil {
		return errors.New("oblivious: a party holds a plaintext or a ciphertext vector, not both")
	}
	if plain == nil && enc == nil {
		return errors.New("oblivious: party holds no vector")
	}
	return nil
}

// RunParty executes the distributed encrypted oblivious shuffle for
// one party. plain is this party's share vector, or nil when it enters
// holding the ciphertext vector enc (exactly one party of the run
// does). It returns the party's post-shuffle vector: plain shares for
// most parties, the ciphertext vector for the final holder.
func RunParty(cfg PartyConfig, tr Transport, plain []uint64, enc []*ahe.Ciphertext) ([]uint64, []*ahe.Ciphertext, error) {
	if err := cfg.validate(plain, enc); err != nil {
		return nil, nil, err
	}
	r := cfg.Parties
	t := Hiders(r)
	partitions := Combinations(r, t)
	rounds := cfg.Rounds
	if rounds <= 0 || rounds > len(partitions) {
		rounds = len(partitions)
	}
	n := len(plain)
	if enc != nil {
		n = len(enc)
	}
	icfg := Config{Mod: cfg.Mod, Source: cfg.Source, Pub: cfg.Pub, SkipRerandomize: cfg.SkipRerandomize, Workers: cfg.Workers}
	for round := 0; round < rounds; round++ {
		var err error
		plain, enc, err = runPartyRound(cfg, icfg, tr, round, partitions[round], n, plain, enc)
		if err != nil {
			return nil, nil, fmt.Errorf("oblivious: party %d round %d: %w", cfg.Index, round, err)
		}
	}
	announce(tr, rounds, PhaseDone)
	return plain, enc, nil
}

// sendAll runs sends in a goroutine so a phase's sends never block its
// receives; the returned channel yields the first send error.
func sendAll(fn func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- fn() }()
	return errc
}

// expectMsg receives the next message from a peer and validates the
// round; the caller validates the kind, since a receiver cannot know
// in advance whether a peer forwards plaintext or the ciphertext
// remainder.
func expectMsg(tr Transport, from, round int) (Msg, error) {
	m, err := tr.Recv(from)
	if err != nil {
		return Msg{}, fmt.Errorf("recv from party %d: %w", from, err)
	}
	if m.Round != round {
		return Msg{}, fmt.Errorf("party %d sent round %d inside round %d", from, m.Round, round)
	}
	return m, nil
}

// recvVector receives one logical vector from a peer, reassembling
// chunk-streamed fragments (Msg.More) in FIFO order. An unchunked
// message is the one-fragment case, so a receiver on this path accepts
// legacy and chunk-streaming senders alike. n bounds the reassembled
// length (the call sites still validate the exact final length, with
// their phase-specific error text).
func recvVector(tr Transport, from, round, n int) (Msg, error) {
	m, err := expectMsg(tr, from, round)
	if err != nil || !m.More {
		return m, err
	}
	switch m.Kind {
	case MsgPlain:
		words := make([]uint64, 0, n)
		m.Words = append(words, m.Words...)
	case MsgEnc:
		enc := make([]*ahe.Ciphertext, 0, n)
		m.Enc = append(enc, m.Enc...)
	default:
		return Msg{}, fmt.Errorf("party %d chunk-streamed kind %d", from, m.Kind)
	}
	m.More = false
	for {
		frag, err := expectMsg(tr, from, round)
		if err != nil {
			return Msg{}, err
		}
		if frag.Kind != m.Kind {
			return Msg{}, fmt.Errorf("party %d switched from kind %d to %d mid-stream", from, m.Kind, frag.Kind)
		}
		if m.Kind == MsgPlain {
			m.Words = append(m.Words, frag.Words...)
			if len(m.Words) > n {
				return Msg{}, fmt.Errorf("party %d streamed %d words, want at most %d", from, len(m.Words), n)
			}
		} else {
			m.Enc = append(m.Enc, frag.Enc...)
			if len(m.Enc) > n {
				return Msg{}, fmt.Errorf("party %d streamed %d ciphertexts, want at most %d", from, len(m.Enc), n)
			}
		}
		if !frag.More {
			return m, nil
		}
	}
}

// sendVector sends one logical plaintext vector, fragmented into
// chunk-sized windows when chunking is on (chunk > 0). A vector that
// fits one window — and every send with chunk <= 0 — goes out as a
// single legacy frame.
func sendVector(tr Transport, to, round, chunk int, words []uint64) error {
	if chunk <= 0 || len(words) <= chunk {
		return tr.Send(to, Msg{Kind: MsgPlain, Round: round, Words: words})
	}
	for lo := 0; lo < len(words); lo += chunk {
		hi := lo + chunk
		if hi > len(words) {
			hi = len(words)
		}
		if err := tr.Send(to, Msg{Kind: MsgPlain, Round: round, Words: words[lo:hi], More: hi < len(words)}); err != nil {
			return err
		}
	}
	return nil
}

// streamSplitEncrypted runs splitEncrypted window by window over the
// vector (chunk elements per window; <= 0 means one window) and hands
// each finished window to emit on a dedicated pipeline goroutine, so
// the AHE work on window k+1 overlaps the transmission of window k —
// the compute/transmit pipeline of the chunk-streamed wire. emit runs
// in window order on a single goroutine and receives the window's
// base offset, its plaintext parts and ciphertext remainder, and
// whether more windows follow. The deterministic Source draws happen
// in the same element order as one unchunked splitEncrypted, so the
// resulting shares are bit-identical at every chunk size. The
// returned channel yields the first error once both the compute and
// emit sides have finished.
func streamSplitEncrypted(enc []*ahe.Ciphertext, k, chunk int, icfg Config, emit func(lo int, parts [][]uint64, rem []*ahe.Ciphertext, more bool) error) <-chan error {
	out := make(chan error, 1)
	n := len(enc)
	if chunk <= 0 || chunk >= n {
		go func() {
			parts, rem, err := splitEncrypted(enc, k, icfg)
			if err != nil {
				out <- err
				return
			}
			out <- emit(0, parts, rem, false)
		}()
		return out
	}
	type window struct {
		lo    int
		parts [][]uint64
		rem   []*ahe.Ciphertext
		more  bool
	}
	// Capacity 1: one window may be computed while one is on the wire.
	windows := make(chan window, 1)
	emitErr := make(chan error, 1)
	go func() {
		for w := range windows {
			if err := emit(w.lo, w.parts, w.rem, w.more); err != nil {
				emitErr <- err
				// Drain so the compute side never blocks on a dead pipe.
				for range windows {
				}
				return
			}
		}
		emitErr <- nil
	}()
	go func() {
		var failed error
		for lo := 0; lo < n && failed == nil; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			parts, rem, err := splitEncrypted(enc[lo:hi], k, icfg)
			if err != nil {
				failed = err
				break
			}
			windows <- window{lo: lo, parts: parts, rem: rem, more: hi < n}
		}
		close(windows)
		if err := <-emitErr; failed == nil {
			failed = err
		}
		out <- failed
	}()
	return out
}

func runPartyRound(cfg PartyConfig, icfg Config, tr Transport, round int, hiders []int, n int, plain []uint64, enc []*ahe.Ciphertext) ([]uint64, []*ahe.Ciphertext, error) {
	r, t, me := cfg.Parties, len(hiders), cfg.Index
	isHider := make([]bool, r)
	for _, h := range hiders {
		isHider[h] = true
	}

	// --- Hide phase. ---
	announce(tr, round, PhaseHide)
	var acc []uint64             // my accumulated plaintext mass (hiders only)
	var encAcc []*ahe.Ciphertext // the ciphertext vector, if I hold it
	if isHider[me] {
		if enc != nil {
			acc = make([]uint64, n)
			encAcc = enc
		} else {
			acc = append([]uint64(nil), plain...)
		}
		recvHide := func() error {
			for s := 0; s < r; s++ {
				if isHider[s] {
					continue
				}
				m, err := recvVector(tr, s, round, n)
				if err != nil {
					return err
				}
				switch m.Kind {
				case MsgPlain:
					if len(m.Words) != n {
						return fmt.Errorf("party %d hide part has length %d, want %d", s, len(m.Words), n)
					}
					addInto(acc, m.Words, cfg.Mod)
				case MsgEnc:
					if encAcc != nil {
						return fmt.Errorf("party %d sent a second ciphertext vector", s)
					}
					if len(m.Enc) != n {
						return fmt.Errorf("party %d ciphertext vector has length %d, want %d", s, len(m.Enc), n)
					}
					encAcc = m.Enc
				default:
					return fmt.Errorf("party %d sent kind %d in the hide phase", s, m.Kind)
				}
			}
			return nil
		}
		if err := recvHide(); err != nil {
			return nil, nil, err
		}
		// Fold accumulated plaintext mass into the ciphertext vector so
		// this hider holds exactly one vector (Figure 2, "Hide").
		if encAcc != nil {
			if err := addPlainAll(encAcc, acc, cfg.Mod, cfg.Pub, icfg.Workers); err != nil {
				return nil, nil, err
			}
			acc = nil
		}
	} else {
		// Seeker: split and send everything away. The encrypted seeker
		// chunk-streams: each window's AHE split goes onto the wire
		// while the next window computes.
		var sendErr <-chan error
		if enc != nil {
			target := hiders[rng.New(cfg.Source.Uint64()).Intn(t)]
			sendErr = streamSplitEncrypted(enc, t, cfg.ChunkWords, icfg, func(_ int, parts [][]uint64, rem []*ahe.Ciphertext, more bool) error {
				pi := 0
				for _, h := range hiders {
					if h == target {
						continue
					}
					if err := tr.Send(h, Msg{Kind: MsgPlain, Round: round, Words: parts[pi], More: more}); err != nil {
						return err
					}
					pi++
				}
				return tr.Send(target, Msg{Kind: MsgEnc, Round: round, Enc: rem, More: more})
			})
		} else {
			parts := splitPlain(plain, t, icfg)
			sendErr = sendAll(func() error {
				for i, h := range hiders {
					if err := sendVector(tr, h, round, cfg.ChunkWords, parts[i]); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := <-sendErr; err != nil {
			return nil, nil, err
		}
	}

	// --- Shuffle phase (hiders only). ---
	announce(tr, round, PhaseShuffle)
	if isHider[me] {
		var seed uint64
		if me == hiders[0] {
			seed = cfg.Source.Uint64()
			sendErr := sendAll(func() error {
				for _, h := range hiders[1:] {
					if err := tr.Send(h, Msg{Kind: MsgSeed, Round: round, Seed: seed}); err != nil {
						return err
					}
				}
				return nil
			})
			if err := <-sendErr; err != nil {
				return nil, nil, err
			}
		} else {
			m, err := expectMsg(tr, hiders[0], round)
			if err != nil {
				return nil, nil, err
			}
			if m.Kind != MsgSeed {
				return nil, nil, fmt.Errorf("lead hider %d sent kind %d, want the permutation seed", hiders[0], m.Kind)
			}
			seed = m.Seed
		}
		perm := rng.New(seed).Perm(n)
		if acc != nil {
			acc = applyPermUint64(acc, perm)
		} else {
			encAcc = applyPermCipher(encAcc, perm)
			if !cfg.SkipRerandomize {
				if err := rerandomizeAll(encAcc, cfg.Pub, icfg.Workers); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	// --- Reshare phase. ---
	announce(tr, round, PhaseReshare)
	// My new vector starts from the parts I keep for myself. The
	// ciphertext hider's kept pieces land in keep/keepEnc on the
	// pipeline goroutine and merge after the send join — the receive
	// loop below runs concurrently with the chunk stream and must not
	// share newPlain with it.
	newPlain := make([]uint64, n)
	var newEnc []*ahe.Ciphertext
	var keep []uint64
	var keepEnc []*ahe.Ciphertext
	var sendErr <-chan error
	if isHider[me] {
		if acc != nil {
			parts := splitPlain(acc, r, icfg)
			copy(newPlain, parts[me])
			sendErr = sendAll(func() error {
				for j := 0; j < r; j++ {
					if j == me {
						continue
					}
					if err := sendVector(tr, j, round, cfg.ChunkWords, parts[j]); err != nil {
						return err
					}
				}
				return nil
			})
		} else {
			target := rng.New(cfg.Source.Uint64() ^ 0x5bd1e995).Intn(r)
			keep = make([]uint64, n)
			// parts[pi] walks the non-target parties in index order,
			// mirroring the simulator's distribution; each window's
			// sends go out while the next window computes.
			sendErr = streamSplitEncrypted(encAcc, r, cfg.ChunkWords, icfg, func(lo int, parts [][]uint64, rem []*ahe.Ciphertext, more bool) error {
				pi := 0
				for j := 0; j < r; j++ {
					if j == target {
						continue
					}
					if j == me {
						copy(keep[lo:lo+len(rem)], parts[pi])
					} else if err := tr.Send(j, Msg{Kind: MsgPlain, Round: round, Words: parts[pi], More: more}); err != nil {
						return err
					}
					pi++
				}
				if target == me {
					keepEnc = append(keepEnc, rem...)
					return nil
				}
				return tr.Send(target, Msg{Kind: MsgEnc, Round: round, Enc: rem, More: more})
			})
		}
	}
	for _, h := range hiders {
		if h == me {
			continue
		}
		m, err := recvVector(tr, h, round, n)
		if err != nil {
			return nil, nil, err
		}
		switch m.Kind {
		case MsgPlain:
			if len(m.Words) != n {
				return nil, nil, fmt.Errorf("party %d reshare part has length %d, want %d", h, len(m.Words), n)
			}
			addInto(newPlain, m.Words, cfg.Mod)
		case MsgEnc:
			if newEnc != nil {
				return nil, nil, fmt.Errorf("party %d sent a second ciphertext remainder", h)
			}
			if len(m.Enc) != n {
				return nil, nil, fmt.Errorf("party %d ciphertext remainder has length %d, want %d", h, len(m.Enc), n)
			}
			newEnc = m.Enc
		default:
			return nil, nil, fmt.Errorf("party %d sent kind %d in the reshare phase", h, m.Kind)
		}
	}
	if sendErr != nil {
		if err := <-sendErr; err != nil {
			return nil, nil, err
		}
	}
	// Merge the ciphertext hider's kept pieces (written by the pipeline
	// goroutine, published by the sendErr join). Addition commutes mod
	// 2^l, so folding them after the received parts is bit-identical to
	// the serial engine's copy-then-accumulate order.
	if keep != nil {
		addInto(newPlain, keep, cfg.Mod)
	}
	if keepEnc != nil {
		if newEnc != nil {
			return nil, nil, errors.New("kept and received a ciphertext remainder in one round")
		}
		newEnc = keepEnc
	}

	// The new ciphertext holder folds its plaintext reshare mass into
	// the ciphertext vector so every party exits the round holding
	// exactly one vector.
	if newEnc != nil {
		if err := addPlainAll(newEnc, newPlain, cfg.Mod, cfg.Pub, icfg.Workers); err != nil {
			return nil, nil, err
		}
		return nil, newEnc, nil
	}
	return newPlain, nil, nil
}
