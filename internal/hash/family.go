package hash

import "math/bits"

// Family is the seeded universal hash family H_seed : [d] -> [d'] used by
// the local-hashing frequency oracles. A user's LDP report carries the
// seed (the "chosen hash function"); the server re-evaluates H_seed on
// every candidate value during estimation.
//
// A 64-bit xxHash is mapped to a bucket by multiply-shift range
// reduction, bucket = floor(h * d' / 2^64), rather than h mod d'. Both
// partition the 64-bit hash space into d' near-equal classes (sizes
// differ by at most one part in 2^64/d' either way), so the privacy and
// utility analyses are unchanged; the range form is what lets the
// aggregation kernel turn "bucket == y" into a precomputed range test
// on the raw hash with no per-candidate division or multiplication
// (see CountSupport).
//
// Family is stateless and safe for concurrent use.
type Family struct {
	// OutputSize is d', the size of the hashed domain (>= 2).
	OutputSize int
}

// NewFamily returns the hash family with output domain [0, outputSize).
// It panics if outputSize < 2 (a 1-bucket hash carries no information).
func NewFamily(outputSize int) Family {
	if outputSize < 2 {
		panic("hash: family output size must be >= 2")
	}
	return Family{OutputSize: outputSize}
}

// Hash maps value into [0, OutputSize) under the function named by seed.
func (f Family) Hash(seed uint64, value uint64) int {
	hi, _ := bits.Mul64(Sum64Uint64(seed, value), uint64(f.OutputSize))
	return int(hi)
}

// HashBytes is Hash for byte-string values (used by TreeHist, whose
// domain is prefixes rather than integer indices).
func (f Family) HashBytes(seed uint64, value []byte) int {
	hi, _ := bits.Mul64(Sum64(seed, value), uint64(f.OutputSize))
	return int(hi)
}

// supportChunk is how many reports CountSupport stages per pass. The
// three staged lanes live on the kernel's stack (3 KiB), so the kernel
// never allocates; the candidate loop streams the counts slice once per
// chunk, which at a few hundred reports per pass is noise next to the
// hash work.
const supportChunk = 128

// CountSupport is the batch kernel behind local-hashing estimation: for
// every candidate value v in [0, len(counts)) it adds to counts[v] the
// number of reports i with Hash(seeds[i], v) == ys[i]. It is exactly
// equivalent to calling Hash once per (report, value) pair, but
// structured for throughput:
//
//   - the value-dependent lane of the 8-byte xxHash64 is hoisted out of
//     the report loop, and four candidate lanes share each report load;
//   - "bucket == y" is tested as a range check on the raw 64-bit hash —
//     bucket(h) = floor(h*d'/2^64) equals y iff h lies in
//     [ceil(y*2^64/d'), ceil((y+1)*2^64/d')) — with the per-report
//     bounds precomputed per chunk, so the per-candidate tail is one
//     subtract and one compare, with no division or multiplication.
//
// The kernel performs zero heap allocations. Every ys[i] must lie in
// [0, OutputSize).
func (f Family) CountSupport(seeds, ys []uint64, counts []int) {
	if len(seeds) != len(ys) {
		panic("hash: CountSupport lanes have mismatched lengths")
	}
	m := uint64(f.OutputSize)
	if m < 2 {
		panic("hash: family output size must be >= 2")
	}
	// Fixed-size stack arrays indexed by i < cn <= supportChunk let the
	// compiler drop every bounds check from the inner loop.
	var sd, lo, wm1 [supportChunk]uint64
	for base := 0; base < len(seeds); base += supportChunk {
		cn := len(seeds) - base
		if cn > supportChunk {
			cn = supportChunk
		}
		for i := 0; i < cn; i++ {
			// Pre-offset the seed state (Sum64Uint64's h0) and turn the
			// target bucket into [lo, lo+width) bounds on the raw hash;
			// wm1 = width-1 so the y = d'-1 bucket, whose upper bound is
			// 2^64, stays representable.
			sd[i] = seeds[base+i] + prime5 + 8
			y := ys[base+i]
			if y >= m {
				panic("hash: CountSupport target outside [0, OutputSize)")
			}
			l, r := bits.Div64(y, 0, m)
			if r > 0 {
				l++
			}
			var hb uint64 // ceil((y+1)*2^64/m), wrapped at 2^64
			if y+1 < m {
				hq, hr := bits.Div64(y+1, 0, m)
				if hr > 0 {
					hq++
				}
				hb = hq
			}
			lo[i] = l
			wm1[i] = hb - l - 1
		}
		v := 0
		for ; v+4 <= len(counts); v += 4 {
			k0 := lhLane(uint64(v))
			k1 := lhLane(uint64(v + 1))
			k2 := lhLane(uint64(v + 2))
			k3 := lhLane(uint64(v + 3))
			var c0, c1, c2, c3 int
			for i := 0; i < cn; i++ {
				s, l, w := sd[i], lo[i], wm1[i]
				if lhMix(s, k0)-l <= w {
					c0++
				}
				if lhMix(s, k1)-l <= w {
					c1++
				}
				if lhMix(s, k2)-l <= w {
					c2++
				}
				if lhMix(s, k3)-l <= w {
					c3++
				}
			}
			counts[v] += c0
			counts[v+1] += c1
			counts[v+2] += c2
			counts[v+3] += c3
		}
		for ; v < len(counts); v++ {
			k := lhLane(uint64(v))
			c := 0
			for i := 0; i < cn; i++ {
				if lhMix(sd[i], k)-lo[i] <= wm1[i] {
					c++
				}
			}
			counts[v] += c
		}
	}
}

// lhLane is the value-dependent half of the 8-byte xxHash64: the mixed
// input lane of Sum64Uint64, a pure function of the candidate value.
func lhLane(v uint64) uint64 {
	k := v * prime2
	k = (k << 31) | (k >> 33)
	return k * prime1
}

// lhMix finishes Sum64Uint64 given the pre-offset seed state
// sd = seed + prime5 + 8 and a precomputed value lane.
func lhMix(sd, k uint64) uint64 {
	h := sd ^ k
	h = ((h<<27)|(h>>37))*prime1 + prime4
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}
