package hash

// Family is the seeded universal hash family H_seed : [d] -> [d'] used by
// the local-hashing frequency oracles. A user's LDP report carries the
// seed (the "chosen hash function"); the server re-evaluates H_seed on
// every candidate value during estimation.
//
// Family is stateless and safe for concurrent use.
type Family struct {
	// OutputSize is d', the size of the hashed domain (>= 2).
	OutputSize int
}

// NewFamily returns the hash family with output domain [0, outputSize).
// It panics if outputSize < 2 (a 1-bucket hash carries no information).
func NewFamily(outputSize int) Family {
	if outputSize < 2 {
		panic("hash: family output size must be >= 2")
	}
	return Family{OutputSize: outputSize}
}

// Hash maps value into [0, OutputSize) under the function named by seed.
func (f Family) Hash(seed uint64, value uint64) int {
	return int(Sum64Uint64(seed, value) % uint64(f.OutputSize))
}

// HashBytes is Hash for byte-string values (used by TreeHist, whose
// domain is prefixes rather than integer indices).
func (f Family) HashBytes(seed uint64, value []byte) int {
	return int(Sum64(seed, value) % uint64(f.OutputSize))
}
