package hash

import (
	"testing"

	"shuffledp/internal/rng"
)

func BenchmarkSum64Uint64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum64Uint64(uint64(i), 0xdeadbeef)
	}
}

func BenchmarkSum64Bytes64(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum64(uint64(i), data)
	}
}

func BenchmarkFamilyHash(b *testing.B) {
	fam := NewFamily(705)
	for i := 0; i < b.N; i++ {
		fam.Hash(uint64(i), uint64(i*7))
	}
}

// BenchmarkCountSupport measures the SOLH aggregation kernel: one block
// of reports swept over a 64Ki-value domain. allocs/op must stay 0 —
// the kernel is the hash hot path the perf trajectory tracks.
func BenchmarkCountSupport(b *testing.B) {
	fam := NewFamily(705)
	const block, d = 512, 1 << 16
	seeds := make([]uint64, block)
	ys := make([]uint64, block)
	r := rng.New(1)
	for i := range seeds {
		seeds[i] = uint64(uint32(r.Uint64()))
		ys[i] = r.Uint64n(705)
	}
	counts := make([]int, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.CountSupport(seeds, ys, counts)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(block*d), "ns/hash")
}

func BenchmarkFWHT64K(b *testing.B) {
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FWHT(data)
	}
}
