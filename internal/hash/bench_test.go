package hash

import "testing"

func BenchmarkSum64Uint64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum64Uint64(uint64(i), 0xdeadbeef)
	}
}

func BenchmarkSum64Bytes64(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum64(uint64(i), data)
	}
}

func BenchmarkFamilyHash(b *testing.B) {
	fam := NewFamily(705)
	for i := 0; i < b.N; i++ {
		fam.Hash(uint64(i), uint64(i*7))
	}
}

func BenchmarkFWHT64K(b *testing.B) {
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FWHT(data)
	}
}
