package hash

import (
	"math"
	"testing"
	"testing/quick"

	"shuffledp/internal/rng"
)

// xxHash64 reference vectors (seed 0 and a nonzero seed), from the
// canonical C implementation.
func TestSum64KnownVectors(t *testing.T) {
	cases := []struct {
		seed uint64
		in   string
		want uint64
	}{
		{0, "", 0xef46db3751d8e999},
		{0, "a", 0xd24ec4f1a98c6e5b},
		{0, "abc", 0x44bc2cf5ad770999},
		{0, "Nobody inspects the spammish repetition", 0xfbcea83c8a378bf1},
		{0, "xxhash", 0x32dd38952c4bc720},
		{20141025, "xxhash", 0xb559b98d844e0635},
	}
	for _, c := range cases {
		if got := Sum64(c.seed, []byte(c.in)); got != c.want {
			t.Errorf("Sum64(%d, %q) = %#x, want %#x", c.seed, c.in, got, c.want)
		}
	}
}

func TestSum64LongInput(t *testing.T) {
	// Exercise the 32-byte block path; value from the reference impl.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	got := Sum64(0, data)
	// Self-consistency: hashing the same bytes twice matches, and a
	// one-byte change flips the result.
	if got != Sum64(0, data) {
		t.Fatal("Sum64 not deterministic")
	}
	data[50]++
	if got == Sum64(0, data) {
		t.Fatal("Sum64 ignored a byte change")
	}
}

func TestSum64Uint64MatchesBytes(t *testing.T) {
	f := func(seed, v uint64) bool {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		return Sum64Uint64(seed, v) == Sum64(seed, buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// CountSupport must agree with the naive per-pair Hash loop for every
// output size, including powers of two and sizes adjacent to them (the
// divisibility-test edge cases).
func TestCountSupportMatchesNaive(t *testing.T) {
	r := rng.New(321)
	for _, dPrime := range []int{2, 3, 4, 5, 7, 8, 16, 17, 63, 64, 65, 705, 1024} {
		fam := NewFamily(dPrime)
		const d, reports = 97, 200
		seeds := make([]uint64, reports)
		ys := make([]uint64, reports)
		for i := range seeds {
			seeds[i] = uint64(uint32(r.Uint64())) // 32-bit seeds, as in Report.Seed
			ys[i] = r.Uint64n(uint64(dPrime))
		}
		got := make([]int, d)
		fam.CountSupport(seeds, ys, got)
		want := make([]int, d)
		for i := range seeds {
			for v := 0; v < d; v++ {
				if fam.Hash(seeds[i], uint64(v)) == int(ys[i]) {
					want[v]++
				}
			}
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("d'=%d: counts[%d] = %d, want %d", dPrime, v, got[v], want[v])
			}
		}
	}
}

// The h < y guard: a report whose y exceeds the hash value must not be
// counted through modular wraparound.
func TestCountSupportSmallHashGuard(t *testing.T) {
	fam := NewFamily(1 << 20)
	counts := make([]int, 64)
	seeds := []uint64{0, 1, 2, 3}
	ys := []uint64{1 << 19, 1<<20 - 1, 7, 0}
	fam.CountSupport(seeds, ys, counts)
	want := make([]int, 64)
	for i := range seeds {
		for v := 0; v < 64; v++ {
			if fam.Hash(seeds[i], uint64(v)) == int(ys[i]) {
				want[v]++
			}
		}
	}
	for v := range want {
		if counts[v] != want[v] {
			t.Fatalf("counts[%d] = %d, want %d", v, counts[v], want[v])
		}
	}
}

func TestFamilyRange(t *testing.T) {
	fam := NewFamily(17)
	for seed := uint64(0); seed < 100; seed++ {
		for v := uint64(0); v < 100; v++ {
			h := fam.Hash(seed, v)
			if h < 0 || h >= 17 {
				t.Fatalf("Hash out of range: %d", h)
			}
		}
	}
}

func TestFamilyPanicsOnTinyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFamily(1)
}

// The collision probability over random seeds should be close to 1/d'
// (the defining property of a universal family that the privacy analysis
// of SOLH relies on: Pr[H(v) = H(v')] ~ 1/d').
func TestFamilyPairwiseCollisions(t *testing.T) {
	const dPrime = 16
	fam := NewFamily(dPrime)
	r := rng.New(99)
	const trials = 200000
	coll := 0
	for i := 0; i < trials; i++ {
		seed := r.Uint64()
		if fam.Hash(seed, 12345) == fam.Hash(seed, 67890) {
			coll++
		}
	}
	got := float64(coll) / trials
	want := 1.0 / dPrime
	if math.Abs(got-want) > 0.004 {
		t.Errorf("collision rate %v, want ~%v", got, want)
	}
}

// Each bucket should receive ~1/d' of values under a random seed.
func TestFamilyBucketUniformity(t *testing.T) {
	const dPrime = 8
	fam := NewFamily(dPrime)
	counts := make([]int, dPrime)
	const n = 80000
	for v := uint64(0); v < n; v++ {
		counts[fam.Hash(7777, v)]++
	}
	want := float64(n) / dPrime
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", b, c, want)
		}
	}
}

func TestFamilyHashBytesRange(t *testing.T) {
	fam := NewFamily(5)
	for i := 0; i < 1000; i++ {
		h := fam.HashBytes(uint64(i), []byte{byte(i), byte(i >> 8), 3})
		if h < 0 || h >= 5 {
			t.Fatalf("HashBytes out of range: %d", h)
		}
	}
}

func TestFWHTInvolution(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]float64(nil), data...)
	FWHT(data)
	FWHT(data)
	for i := range data {
		if math.Abs(data[i]/8-orig[i]) > 1e-12 {
			t.Fatalf("FWHT(FWHT(x))/n != x at %d: %v vs %v", i, data[i]/8, orig[i])
		}
	}
}

func TestFWHTMatchesMatrix(t *testing.T) {
	// FWHT(x)[i] must equal sum_j H[i,j] x[j].
	const n = 16
	x := make([]float64, n)
	r := rng.New(5)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	got := append([]float64(nil), x...)
	FWHT(got)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += float64(HadamardEntry(uint64(i), uint64(j))) * x[j]
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("FWHT[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestFWHTPanics(t *testing.T) {
	for _, bad := range [][]float64{{}, {1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for len %d", len(bad))
				}
			}()
			FWHT(bad)
		}()
	}
}

func TestHadamardEntryProperties(t *testing.T) {
	// Row 0 and column 0 are all +1; H is symmetric; rows are
	// orthogonal.
	for i := uint64(0); i < 32; i++ {
		if HadamardEntry(0, i) != 1 || HadamardEntry(i, 0) != 1 {
			t.Fatalf("border entry not +1 at %d", i)
		}
		for j := uint64(0); j < 32; j++ {
			if HadamardEntry(i, j) != HadamardEntry(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	const n = 32
	for a := uint64(0); a < n; a++ {
		for b := uint64(0); b < n; b++ {
			dot := 0
			for k := uint64(0); k < n; k++ {
				dot += HadamardEntry(a, k) * HadamardEntry(b, k)
			}
			want := 0
			if a == b {
				want = n
			}
			if dot != want {
				t.Fatalf("rows %d,%d dot = %d, want %d", a, b, dot, want)
			}
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 915: 1024, 42178: 65536}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
