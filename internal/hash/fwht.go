package hash

// FWHT performs an in-place fast Walsh–Hadamard transform of data, whose
// length must be a power of two. Applying FWHT twice multiplies each
// entry by len(data) (the transform is an involution up to scale), which
// the Hadamard response oracle uses to aggregate reports in
// O(D log D) instead of O(D^2).
func FWHT(data []float64) {
	n := len(data)
	if n == 0 || n&(n-1) != 0 {
		panic("hash: FWHT length must be a nonzero power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := data[j], data[j+h]
				data[j], data[j+h] = x+y, x-y
			}
		}
	}
}

// HadamardEntry returns H[row, col] of the (unnormalized) 2^k x 2^k
// Hadamard matrix: +1 if popcount(row AND col) is even, else -1.
// Individual entries are what each user needs to encode a value, so this
// must be O(1).
func HadamardEntry(row, col uint64) int {
	x := row & col
	// Parity of the popcount via bit folding.
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	if x&1 == 0 {
		return 1
	}
	return -1
}

// NextPow2 returns the smallest power of two >= v (and >= 1).
func NextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}
