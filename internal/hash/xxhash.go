// Package hash provides the hashing substrate of the repository: a
// from-scratch xxHash64 implementation, the seeded universal hash family
// used by the local-hashing frequency oracles (OLH, SOLH), and a fast
// Walsh–Hadamard transform for the Hadamard response oracle.
//
// The paper's prototype uses python-xxhash with 32-bit seeds as the
// "randomly chosen hash function from a universal family" (§VII-B,
// appendix); we mirror that: a report carries a seed and the hash
// function is xxHash64(seed, value) mod d'.
package hash

import "encoding/binary"

const (
	prime1 uint64 = 0x9e3779b185ebca87
	prime2 uint64 = 0xc2b2ae3d27d4eb4f
	prime3 uint64 = 0x165667b19e3779f9
	prime4 uint64 = 0x85ebca77c2b2ae63
	prime5 uint64 = 0x27d4eb2f165667c5
)

func rol(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

// Sum64 computes the xxHash64 of data with the given seed.
func Sum64(seed uint64, data []byte) uint64 {
	n := len(data)
	var h uint64
	p := data
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(p) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(p[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(p[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(p[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(p[24:32]))
			p = p[32:]
		}
		h = rol(v1, 1) + rol(v2, 7) + rol(v3, 12) + rol(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for len(p) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(p[:8]))
		h = rol(h, 27)*prime1 + prime4
		p = p[8:]
	}
	if len(p) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(p[:4])) * prime1
		h = rol(h, 23)*prime2 + prime3
		p = p[4:]
	}
	for _, b := range p {
		h ^= uint64(b) * prime5
		h = rol(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Sum64Uint64 hashes a single 64-bit value (the common case for the
// frequency oracles, where user values are domain indices). It is the
// 8-byte specialization of Sum64 — bit-identical to hashing the value's
// little-endian encoding — written without the byte staging or length
// loops so the compiler can inline it into aggregation kernels. It
// never allocates. lhLane and lhMix (family.go) are the two halves the
// CountSupport kernel hoists separately.
func Sum64Uint64(seed, v uint64) uint64 {
	return lhMix(seed+prime5+8, lhLane(v))
}
