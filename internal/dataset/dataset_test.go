package dataset

import (
	"math"
	"testing"
)

func TestSyntheticShape(t *testing.T) {
	ds := Synthetic("test", 10000, 100, 1.2, 1)
	if ds.N() != 10000 || ds.D != 100 {
		t.Fatalf("n=%d d=%d", ds.N(), ds.D)
	}
	for _, v := range ds.Values {
		if v < 0 || v >= 100 {
			t.Fatalf("value %d out of range", v)
		}
	}
	f := ds.TrueFrequencies()
	sum := 0.0
	for _, x := range f {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("frequencies sum to %v", sum)
	}
	// Zipf skew: rank 0 must dominate rank 50.
	if f[0] <= f[50] {
		t.Fatal("no skew in synthetic Zipf data")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("a", 1000, 50, 1.1, 7)
	b := Synthetic("b", 1000, 50, 1.1, 7)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := Synthetic("c", 1000, 50, 1.1, 8)
	same := 0
	for i := range a.Values {
		if a.Values[i] == c.Values[i] {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSyntheticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthetic("x", 0, 10, 1, 1)
}

func TestScaled(t *testing.T) {
	ds := Scaled(IPUMS, 100, 1)
	if ds.N() != IPUMSN/100 {
		t.Fatalf("scaled n = %d", ds.N())
	}
	if ds.D != IPUMSD {
		t.Fatalf("scaled d = %d", ds.D)
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scaled(IPUMS, 0, 1)
}

// Full-scale generators are exercised once here; they are the exact
// configurations of §VII-A.
func TestPaperScaleGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	ipums := IPUMS(1)
	if ipums.N() != 602325 || ipums.D != 915 {
		t.Fatalf("IPUMS %d x %d", ipums.N(), ipums.D)
	}
	kosarak := Scaled(Kosarak, 10, 1)
	if kosarak.D != 42178 {
		t.Fatalf("Kosarak d = %d", kosarak.D)
	}
}

func TestAOLStrings(t *testing.T) {
	ds := SyntheticStrings("aol-small", 20000, 500, 48, 1.05, 2)
	if ds.N() != 20000 || ds.Bits != 48 {
		t.Fatalf("n=%d bits=%d", ds.N(), ds.Bits)
	}
	seen := map[uint64]bool{}
	for _, v := range ds.Values {
		if v >= 1<<48 {
			t.Fatalf("value %x exceeds 48 bits", v)
		}
		seen[v] = true
	}
	if len(seen) < 300 || len(seen) > 500 {
		t.Fatalf("unique strings: %d, want close to 500", len(seen))
	}
}

func TestTopStrings(t *testing.T) {
	ds := &StringDataset{
		Name:   "tiny",
		Values: []uint64{5, 5, 5, 9, 9, 1},
		Bits:   8,
	}
	top := ds.TopStrings(2)
	if len(top) != 2 || top[0] != 5 || top[1] != 9 {
		t.Fatalf("TopStrings = %v", top)
	}
	// k beyond the distinct count clamps.
	if got := ds.TopStrings(10); len(got) != 3 {
		t.Fatalf("clamped TopStrings = %v", got)
	}
}

func TestStringPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bits": func() { SyntheticStrings("x", 10, 5, 4, 1, 1) },
		"uniq": func() { SyntheticStrings("x", 10, 1, 48, 1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
