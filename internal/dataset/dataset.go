// Package dataset generates the synthetic stand-ins for the paper's
// three evaluation datasets (§VII-A). The originals are not
// redistributable, so each generator matches the statistics the
// experiments actually consume — n, domain size, and frequency skew —
// as documented in DESIGN.md §2:
//
//   - IPUMS:   n = 602,325 users, d = 915 cities, Zipf(1.1).
//   - Kosarak: n = 990,002 users, d = 42,178 items, Zipf(1.4).
//   - AOL:     n = 500,000 users, 6-byte (48-bit) query strings,
//     ~120,000 unique, Zipf(1.05) over the unique strings.
//
// All generators are deterministic given the seed.
package dataset

import (
	"fmt"

	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// Paper-reported dataset statistics.
const (
	IPUMSN = 602325
	IPUMSD = 915

	KosarakN = 990002
	KosarakD = 42178

	AOLN      = 500000
	AOLUnique = 120000
	AOLBits   = 48
)

// Dataset is a categorical dataset: each user holds one value in
// [0, D).
type Dataset struct {
	// Name labels the dataset in experiment output.
	Name string
	// Values holds one value per user.
	Values []int
	// D is the domain size.
	D int
}

// N returns the number of users.
func (ds *Dataset) N() int { return len(ds.Values) }

// TrueFrequencies returns the exact frequency vector.
func (ds *Dataset) TrueFrequencies() []float64 {
	return ldp.TrueFrequencies(ds.Values, ds.D)
}

// Histogram returns the exact count vector.
func (ds *Dataset) Histogram() []int { return ldp.Histogram(ds.Values, ds.D) }

// Synthetic draws n users from Zipf(s) over [0, d).
func Synthetic(name string, n, d int, s float64, seed uint64) *Dataset {
	if n < 1 || d < 2 {
		panic("dataset: need n >= 1 and d >= 2")
	}
	r := rng.New(seed)
	z := rng.NewZipf(d, s)
	values := make([]int, n)
	for i := range values {
		values[i] = z.Sample(r)
	}
	return &Dataset{Name: name, Values: values, D: d}
}

// IPUMS generates the census-city stand-in at full scale.
func IPUMS(seed uint64) *Dataset {
	return Synthetic("IPUMS", IPUMSN, IPUMSD, 1.1, seed)
}

// Kosarak generates the click-stream stand-in at full scale.
func Kosarak(seed uint64) *Dataset {
	return Synthetic("Kosarak", KosarakN, KosarakD, 1.4, seed)
}

// Scaled returns a smaller copy of a generator's output for quick runs:
// the same d and skew, but n scaled down by factor (>= 1).
func Scaled(gen func(uint64) *Dataset, factor int, seed uint64) *Dataset {
	if factor < 1 {
		panic("dataset: scale factor must be >= 1")
	}
	full := gen(seed)
	n := len(full.Values) / factor
	if n < 1 {
		n = 1
	}
	full.Values = full.Values[:n]
	full.Name = fmt.Sprintf("%s/%d", full.Name, factor)
	return full
}

// StringDataset is a dataset of fixed-width bit strings (the succinct-
// histogram input, §VII-C).
type StringDataset struct {
	// Name labels the dataset.
	Name string
	// Values holds one Bits-bit string per user, packed into uint64.
	Values []uint64
	// Bits is the string length in bits (48 for AOL).
	Bits int
}

// N returns the number of users.
func (ds *StringDataset) N() int { return len(ds.Values) }

// AOL generates the query-log stand-in: nUnique distinct 48-bit strings
// with Zipf(1.05) popularity, sampled n times.
func AOL(seed uint64) *StringDataset {
	return SyntheticStrings("AOL", AOLN, AOLUnique, AOLBits, 1.05, seed)
}

// SyntheticStrings draws n users over nUnique distinct `bits`-bit
// strings with Zipf(s) popularity.
func SyntheticStrings(name string, n, nUnique, bits int, s float64, seed uint64) *StringDataset {
	if bits < 8 || bits > 64 {
		panic("dataset: string bits must be in [8, 64]")
	}
	if nUnique < 2 || n < 1 {
		panic("dataset: need nUnique >= 2 and n >= 1")
	}
	r := rng.New(seed)
	// Distinct random strings; at 48 bits collisions among 120k draws
	// are ~2^-14 likely per pair, so reject duplicates explicitly.
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << uint(bits)) - 1
	}
	unique := make([]uint64, 0, nUnique)
	seen := make(map[uint64]bool, nUnique)
	for len(unique) < nUnique {
		v := r.Uint64() & mask
		if !seen[v] {
			seen[v] = true
			unique = append(unique, v)
		}
	}
	z := rng.NewZipf(nUnique, s)
	values := make([]uint64, n)
	for i := range values {
		values[i] = unique[z.Sample(r)]
	}
	return &StringDataset{Name: name, Values: values, Bits: bits}
}

// TopStrings returns the k most frequent strings in the dataset (ties
// broken arbitrarily but deterministically).
func (ds *StringDataset) TopStrings(k int) []uint64 {
	counts := make(map[uint64]int)
	for _, v := range ds.Values {
		counts[v]++
	}
	type kv struct {
		v uint64
		c int
	}
	all := make([]kv, 0, len(counts))
	for v, c := range counts {
		all = append(all, kv{v, c})
	}
	// Selection of top k by count, then value for determinism.
	for i := 0; i < k && i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].c > all[best].c ||
				(all[j].c == all[best].c && all[j].v < all[best].v) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}
