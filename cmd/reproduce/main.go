// Command reproduce runs the entire evaluation (§VII) in one go at a
// configurable scale and prints every table and figure. With -quick it
// finishes in roughly a minute on a laptop; without it, expect the
// full-scale datasets and 20 trials per cell.
//
// Usage:
//
//	reproduce [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"shuffledp/internal/dataset"
	"shuffledp/internal/experiment"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down datasets and fewer trials")
	flag.Parse()

	scale, trials, t3n := 1, 20, 20000
	if *quick {
		scale, trials, t3n = 50, 5, 500
	}
	const delta = 1e-9

	fmt.Println("=== Table I: amplification bounds ===")
	rows1 := experiment.Table1([]float64{0.1, 0.2, 0.3, 0.4, 0.49, 1, 2, 4}, 1000000, delta)
	fmt.Print(experiment.FormatTable1(rows1))

	fmt.Println("\n=== Figure 3: MSE vs epsC (IPUMS) ===")
	ipums := dataset.Scaled(dataset.IPUMS, scale, 1)
	f3cfg := experiment.DefaultFigure3Config()
	f3cfg.Trials = trials
	points, err := experiment.Figure3(ipums, f3cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(n=%d, d=%d, %d trials)\n", ipums.N(), ipums.D, trials)
	fmt.Print(experiment.FormatCurve(points, experiment.MethodNames))

	fmt.Println("\n=== Table II: SOLH vs RAP_R (Kosarak) ===")
	kosarak := dataset.Scaled(dataset.Kosarak, scale, 2)
	t2cfg := experiment.DefaultTable2Config()
	t2cfg.Trials = trials
	rows2, err := experiment.Table2(kosarak, t2cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(n=%d, d=%d)\n", kosarak.N(), kosarak.D)
	fmt.Print(experiment.FormatTable2(rows2, t2cfg.FixedDs))

	fmt.Println("\n=== Figure 4: succinct-histogram precision (AOL) ===")
	// TreeHist needs enough users per round for the per-round budget
	// epsC/6; cap the scale-down at 10x so the quick run still shows
	// the shuffle methods separating from LDP.
	aolScale := scale
	if aolScale > 10 {
		aolScale = 10
	}
	unique := dataset.AOLUnique / aolScale
	if unique < 100 {
		unique = 100
	}
	aol := dataset.SyntheticStrings("AOL", dataset.AOLN/aolScale, unique,
		dataset.AOLBits, 1.05, 3)
	f4cfg := experiment.DefaultFigure4Config()
	if *quick {
		f4cfg.Trials = 1
		f4cfg.EpsCs = []float64{0.4, 1.0}
	}
	points4, err := experiment.Figure4(aol, f4cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(n=%d, top-%d)\n", aol.N(), f4cfg.K)
	fmt.Print(experiment.FormatFigure4(points4, f4cfg.Methods))

	fmt.Println("\n=== Table III: SS vs PEOS overhead ===")
	t3cfg := experiment.DefaultTable3Config()
	t3cfg.N = t3n
	t3cfg.NR = t3n / 10
	if *quick {
		t3cfg.KeyBits = 768
	}
	rows3, err := experiment.Table3(t3cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(n=%d, nr=%d, DGK-%d)\n", t3cfg.N, t3cfg.NR, t3cfg.KeyBits)
	fmt.Print(experiment.FormatTable3(rows3))
}
