// Command table1 regenerates Table I: the privacy-amplification bounds
// of EFMRTT'19, CSUZZ'19 and BBGN'19 side by side over a grid of local
// budgets.
//
// Usage:
//
//	table1 [-n users] [-delta d]
package main

import (
	"flag"
	"fmt"

	"shuffledp/internal/experiment"
)

func main() {
	n := flag.Int("n", 1000000, "number of users")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	flag.Parse()

	epsLs := []float64{0.1, 0.2, 0.3, 0.4, 0.49, 0.6, 0.8, 1, 2, 4, 6}
	rows := experiment.Table1(epsLs, *n, *delta)
	fmt.Printf("Table I — amplified central epsilon per bound (n=%d, delta=%.0e)\n", *n, *delta)
	fmt.Println("NaN marks budgets where a bound's validity condition fails.")
	fmt.Print(experiment.FormatTable1(rows))
}
