// Command figure4 regenerates Figure 4: top-32 precision of the
// succinct-histogram (TreeHist) problem on the AOL-shaped dataset
// (48-bit strings, 6 rounds of 8 bits) for every method.
//
// Usage:
//
//	figure4 [-scale k] [-trials t] [-k topk] [-delta d] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"

	"shuffledp/internal/dataset"
	"shuffledp/internal/experiment"
)

func main() {
	scale := flag.Int("scale", 1, "divide the AOL n by this factor")
	trials := flag.Int("trials", 3, "trials per (method, budget)")
	topK := flag.Int("k", 32, "number of frequent strings to find")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 3, "random seed")
	flag.Parse()

	n := dataset.AOLN / *scale
	unique := dataset.AOLUnique / *scale
	if unique < 2*(*topK) {
		unique = 2 * (*topK)
	}
	ds := dataset.SyntheticStrings("AOL", n, unique, dataset.AOLBits, 1.05, *seed)
	cfg := experiment.DefaultFigure4Config()
	cfg.K = *topK
	cfg.Trials = *trials
	cfg.Delta = *delta
	cfg.Seed = *seed
	points, err := experiment.Figure4(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 4 — top-%d precision on %s (n=%d, 48-bit strings, 6 rounds)\n",
		*topK, ds.Name, ds.N())
	fmt.Print(experiment.FormatFigure4(points, cfg.Methods))
}
