// Command bench writes the machine-readable perf trajectories tracked
// across PRs (see EXPERIMENTS.md):
//
//   - the aggregate suite times the SOLH aggregation engine against the
//     seed revision's sequential baseline -> BENCH_aggregate.json
//   - the service suite times the streaming ingestion tier end to end
//     at several client counts -> BENCH_service.json
//   - the peos suite times the cryptographic path (Algorithm 1) both
//     in process and as the role-separated TCP cluster
//     -> BENCH_peos.json
//
// Select with -suite aggregate|service|peos|all (default all).
//
// In the aggregate suite, three variants run over the same
// pre-randomized reports:
//
//   - seed-sequential: the original aggregator loop — one byte-staged
//     xxHash64 evaluation plus a 64-bit division per (report, value)
//     pair (measured over -baseline-n reports; the per-report cost is
//     size-independent, and the full n would take minutes at d = 65536).
//   - kernel: the cache-blocked zero-allocation CountSupport kernel on
//     one goroutine.
//   - parallel: the same kernel fanned out over GOMAXPROCS shard
//     aggregators and merged.
//
// Usage:
//
//	go run ./cmd/bench [-suite all] [-n 100000] [-baseline-n 10000] [-d 1024,65536]
//	                   [-out BENCH_aggregate.json] [-service-n 20000]
//	                   [-service-clients 1,2,4,8] [-service-out BENCH_service.json]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"shuffledp/internal/hash"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

type benchCase struct {
	D      int `json:"d"`
	DPrime int `json:"d_prime"`
	N      int `json:"n"`
	// NsPerReport by variant; one report costs d hash evaluations.
	SeedSequentialNsPerReport float64 `json:"seed_sequential_ns_per_report"`
	KernelNsPerReport         float64 `json:"kernel_ns_per_report"`
	ParallelNsPerReport       float64 `json:"parallel_ns_per_report"`
	KernelSpeedup             float64 `json:"kernel_speedup"`
	ParallelSpeedup           float64 `json:"parallel_speedup"`
	// HotPathAllocs is allocations per CountSupport block fold (must
	// be 0).
	HotPathAllocs float64 `json:"hot_path_allocs"`
}

type benchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	BaselineN   int    `json:"baseline_n"`
	// Note flags runs where the parallel variant could not fan out.
	Note  string      `json:"note,omitempty"`
	Cases []benchCase `json:"cases"`
}

func main() {
	suite := flag.String("suite", "all", "which suite to run: aggregate, service, or all")
	n := flag.Int("n", 100000, "reports aggregated by the kernel variants")
	baselineN := flag.Int("baseline-n", 10000, "reports aggregated by the seed-sequential baseline")
	ds := flag.String("d", "1024,65536", "comma-separated domain sizes")
	out := flag.String("out", "BENCH_aggregate.json", "aggregate-suite output JSON path")
	serviceN := flag.Int("service-n", 20000, "reports streamed per service-suite run")
	serviceClients := flag.String("service-clients", "1,2,4,8", "comma-separated client counts for the service suite")
	serviceEpochs := flag.Int("service-epochs", 1, "collection rounds to cut each service-suite run into")
	serviceBatch := flag.Int("service-batch", 512, "service-suite shuffle-batch size")
	serviceD := flag.Int("service-d", 64, "service-suite domain size")
	serviceOut := flag.String("service-out", "BENCH_service.json", "service-suite output JSON path")
	peosN := flag.Int("peos-n", 400, "peos-suite users per run")
	peosD := flag.Int("peos-d", 16, "peos-suite domain size")
	peosNR := flag.Int("peos-nr", 24, "peos-suite joint fake reports")
	peosKeyBits := flag.String("peos-keybits", "1024", "comma-separated DGK modulus bit sizes for the peos suite")
	peosRs := flag.String("peos-r", "2,3", "comma-separated shuffler counts for the peos suite")
	peosWorkers := flag.String("peos-workers", "0", "comma-separated decryption worker counts for the peos suite (0 = GOMAXPROCS)")
	peosNaive := flag.Bool("peos-naive", false, "run the peos suite with the DGK fast path disabled (naive-AHE ablation)")
	peosAnalyzers := flag.String("peos-analyzers", "1,2,4", "comma-separated analyzer shard counts for the peos scaling sweep")
	peosShufWorkers := flag.String("peos-shuffler-workers", "1,2,4", "comma-separated shuffler crypto worker counts for the peos scaling sweep")
	peosChunkWords := flag.Int("peos-chunk-words", 64, "wire chunk window (elements) for the shuffler scaling sweep (0 = one frame)")
	peosOut := flag.String("peos-out", "BENCH_peos.json", "peos-suite output JSON path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected suites to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the suites) to this path")
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *n < 1 || *serviceN < 1 || *peosN < 1 {
		log.Fatal("-n, -service-n, and -peos-n must be >= 1")
	}
	if *baselineN < 1 || *baselineN > *n {
		*baselineN = *n
	}
	runAggregate := *suite == "all" || *suite == "aggregate"
	runService := *suite == "all" || *suite == "service"
	runPeos := *suite == "all" || *suite == "peos"
	if !runAggregate && !runService && !runPeos {
		log.Fatalf("unknown -suite %q (want aggregate, service, peos, or all)", *suite)
	}

	if runPeos {
		rs, err := parseInts(*peosRs)
		if err != nil {
			log.Fatalf("bad -peos-r: %v", err)
		}
		keyBits, err := parseInts(*peosKeyBits)
		if err != nil {
			log.Fatalf("bad -peos-keybits: %v", err)
		}
		workers, err := parseIntsMin(*peosWorkers, 0)
		if err != nil {
			log.Fatalf("bad -peos-workers: %v", err)
		}
		analyzerCounts, err := parseInts(*peosAnalyzers)
		if err != nil {
			log.Fatalf("bad -peos-analyzers: %v", err)
		}
		shufWorkers, err := parseInts(*peosShufWorkers)
		if err != nil {
			log.Fatalf("bad -peos-shuffler-workers: %v", err)
		}
		rep, err := runPEOSSuite(*peosN, *peosD, *peosNR, keyBits, rs, workers, analyzerCounts, shufWorkers, *peosChunkWords, *peosNaive)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*peosOut, rep)
	}
	if runService {
		counts, err := parseInts(*serviceClients)
		if err != nil {
			log.Fatalf("bad -service-clients: %v", err)
		}
		rep, err := runServiceSuite(*serviceN, *serviceD, *serviceBatch, *serviceEpochs, counts)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*serviceOut, rep)
	}
	if !runAggregate {
		return
	}

	rep := benchReport{
		Benchmark:   "AggregateSOLH",
		GeneratedBy: "cmd/bench",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BaselineN:   *baselineN,
	}
	if rep.GoMaxProcs == 1 {
		rep.Note = "single-CPU runner: the parallel variant runs one worker, " +
			"so parallel_speedup equals the kernel speedup; AggregateParallel " +
			"scales near-linearly with GOMAXPROCS on multi-core machines"
	}
	dsInts, err := parseInts(*ds)
	if err != nil {
		log.Fatalf("bad -d: %v", err)
	}
	for _, d := range dsInts {
		rep.Cases = append(rep.Cases, runCase(d, *n, *baselineN))
	}
	writeJSON(*out, rep)
}

func parseInts(csv string) ([]int, error) { return parseIntsMin(csv, 1) }

// parseIntsMin parses a comma-separated int list, requiring every
// entry to be at least min (0 for worker counts, where 0 means
// GOMAXPROCS).
func parseIntsMin(csv string, min int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", f, err)
		}
		if v < min {
			return nil, fmt.Errorf("entry %q: must be >= %d", f, min)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func runCase(d, n, baselineN int) benchCase {
	// d' = 111 is what the amplification analysis actually picks at this
	// scale (amplify.OptimalDPrime at n = 10^5, epsC = 1, delta = 1e-9).
	const dPrime, eps = 111, 4
	fo := ldp.NewSOLH(d, dPrime, eps)
	r := rng.New(1)
	reports := make([]ldp.Report, n)
	for i := range reports {
		reports[i] = fo.Randomize(i%d, r)
	}

	c := benchCase{D: d, DPrime: fo.DPrime(), N: n}

	seedNs := timeIt(func() {
		est := seedSequentialEstimates(fo, reports[:baselineN])
		sink(est)
	})
	c.SeedSequentialNsPerReport = seedNs / float64(baselineN)

	kernelNs := timeIt(func() {
		agg := fo.NewAggregator()
		for _, rp := range reports {
			agg.Add(rp)
		}
		sink(agg.Estimates())
	})
	c.KernelNsPerReport = kernelNs / float64(n)

	parNs := timeIt(func() {
		sink(ldp.AggregateParallel(fo, reports, 0).Estimates())
	})
	c.ParallelNsPerReport = parNs / float64(n)

	c.KernelSpeedup = c.SeedSequentialNsPerReport / c.KernelNsPerReport
	c.ParallelSpeedup = c.SeedSequentialNsPerReport / c.ParallelNsPerReport

	// Allocation check on the hot path: one block folded into counts.
	fam := hash.NewFamily(fo.DPrime())
	seeds := make([]uint64, 512)
	ys := make([]uint64, 512) // zero targets are valid buckets
	counts := make([]int, d)
	c.HotPathAllocs = testing.AllocsPerRun(3, func() {
		fam.CountSupport(seeds, ys, counts)
	})

	fmt.Printf("d=%-6d d'=%-4d seed=%8.1f ns/report  kernel=%8.1f ns/report (%.2fx)  parallel=%8.1f ns/report (%.2fx)  hot-path allocs=%v\n",
		c.D, c.DPrime, c.SeedSequentialNsPerReport, c.KernelNsPerReport, c.KernelSpeedup,
		c.ParallelNsPerReport, c.ParallelSpeedup, c.HotPathAllocs)
	return c
}

// seedSequentialEstimates replicates the seed revision's aggregator:
// retained reports, then one byte-staged xxHash64 evaluation and one
// 64-bit modulo per (report, value) pair at Estimates time.
func seedSequentialEstimates(fo *ldp.LocalHash, reports []ldp.Report) []float64 {
	d, dPrime := fo.Domain(), fo.DPrime()
	counts := make([]int, d)
	for _, rp := range reports {
		seed := uint64(rp.Seed)
		for v := 0; v < d; v++ {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if int(hash.Sum64(seed, buf[:])%uint64(dPrime)) == rp.Value {
				counts[v]++
			}
		}
	}
	return ldp.CalibrateCounts(counts, len(reports), fo.P(), 1/float64(dPrime))
}

var sinkVal float64

// sink defeats dead-code elimination of the measured work.
func sink(est []float64) {
	if len(est) > 0 {
		sinkVal += est[0]
	}
}

func timeIt(fn func()) float64 {
	// Best of up to three runs; the deadline skips repeat runs once ~30s
	// have elapsed (it cannot shorten an in-flight run, so one very slow
	// variant still completes once).
	best := float64(0)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return best
}
