package main

// The peos suite times the cryptographic path — Algorithm 1 end to
// end — in both deployment shapes so the crypto cost enters the perf
// trajectory next to the aggregation and service suites:
//
//   - in-process: protocol.PEOS.Run (the simulator), with the paper's
//     per-party cost accounting (transport.Meter bytes).
//   - cluster: the role-separated tier of internal/cluster — R real
//     shuffler nodes + analyzer node over loopback TCP, real framing,
//     real DGK ciphertext (de)serialization on every hop.
//
// The delta between the two is the real price of the network layer;
// the absolute numbers trace the DGK/EOS cost model of Table III.

import (
	"fmt"
	"log"
	"net"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

type peosCase struct {
	R       int `json:"r"`
	N       int `json:"n"`
	NR      int `json:"nr"`
	D       int `json:"d"`
	KeyBits int `json:"key_bits"`
	// DecryptWorkers is the analyzer/server decryption fan-out for this
	// case (0 = GOMAXPROCS); FastPath records whether the DGK
	// fixed-base/windowed kernels were enabled (false = the naive
	// reference path, the ablation baseline).
	DecryptWorkers int  `json:"decrypt_workers"`
	FastPath       bool `json:"fast_path"`
	// In-process Algorithm 1 (protocol.PEOS.Run).
	InProcessSeconds     float64 `json:"in_process_seconds"`
	InProcessNsPerReport float64 `json:"in_process_ns_per_report"`
	// Role-separated cluster over loopback TCP (internal/cluster).
	ClusterSeconds     float64 `json:"cluster_seconds"`
	ClusterNsPerReport float64 `json:"cluster_ns_per_report"`
	// Per-party communication of the in-process run (Table III view).
	UserSentBytes     int64 `json:"user_sent_bytes"`
	ShufflerSentBytes int64 `json:"shuffler0_sent_bytes"`
	ServerRecvBytes   int64 `json:"server_recv_bytes"`
}

type peosReport struct {
	Benchmark   string     `json:"benchmark"`
	GeneratedBy string     `json:"generated_by"`
	Note        string     `json:"note"`
	Cases       []peosCase `json:"cases"`
}

func runPEOSSuite(n, d, nr int, keyBitsList, rs, workersList []int, naive bool) (*peosReport, error) {
	fo := ldp.NewGRR(d, 2)
	src := rng.New(11)
	values := make([]int, n)
	for i := range values {
		values[i] = src.Intn(d)
	}
	rep := &peosReport{
		Benchmark:   "PEOS",
		GeneratedBy: "cmd/bench",
		Note: "in_process is protocol.PEOS.Run; cluster is internal/cluster " +
			"(R shuffler nodes + analyzer over loopback TCP); one warm key pair " +
			"per key size, estimates of the two paths are bit-identical by the " +
			"conformance tests; fast_path=false is the naive-AHE ablation",
	}
	for _, keyBits := range keyBitsList {
		priv, err := ahe.GenerateDGK(keyBits, 64)
		if err != nil {
			return nil, err
		}
		priv.SetFastPath(!naive)
		for _, r := range rs {
			for _, workers := range workersList {
				c := peosCase{R: r, N: n, NR: nr, D: d, KeyBits: keyBits,
					DecryptWorkers: workers, FastPath: !naive}

				var meter *transport.Meter
				inNs := timeIt(func() {
					p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(21))
					if err != nil {
						log.Fatal(err)
					}
					p.DecryptWorkers = workers
					res, err := p.Run(values, rng.New(22))
					if err != nil {
						log.Fatal(err)
					}
					meter = res.Meter
					sink(res.Estimates)
				})
				c.InProcessSeconds = inNs / 1e9
				c.InProcessNsPerReport = inNs / float64(n)
				c.UserSentBytes = meter.Stats(protocol.PartyUsers).SentBytes
				c.ShufflerSentBytes = meter.Stats(protocol.ShufflerName(0)).SentBytes
				c.ServerRecvBytes = meter.Stats(protocol.PartyServer).RecvBytes

				clNs, err := timePEOSCluster(fo, priv, values, r, nr, workers)
				if err != nil {
					return nil, err
				}
				c.ClusterSeconds = clNs / 1e9
				c.ClusterNsPerReport = clNs / float64(n)

				fmt.Printf("peos r=%d n=%d nr=%d key=%d workers=%d fast=%v: in-process %.2fs (%.0f ns/report)  cluster %.2fs (%.0f ns/report)\n",
					r, n, nr, keyBits, workers, !naive,
					c.InProcessSeconds, c.InProcessNsPerReport, c.ClusterSeconds, c.ClusterNsPerReport)
				rep.Cases = append(rep.Cases, c)
			}
		}
	}
	return rep, nil
}

// timePEOSCluster stands up a fresh loopback cluster and times one
// full collection round (client submission through served estimate).
func timePEOSCluster(fo ldp.FrequencyOracle, priv *ahe.DGKPrivateKey, values []int, r, nr, workers int) (float64, error) {
	lns := make([]net.Listener, r)
	topo := cluster.Topology{Shufflers: make([]string, r)}
	for j := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		lns[j] = ln
		topo.Shufflers[j] = ln.Addr().String()
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	topo.Analyzer = aln.Addr().String()
	analyzer, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{
		Topology:       topo,
		Listener:       aln,
		FO:             fo,
		NR:             nr,
		Priv:           priv,
		Workers:        workers,
		CollectTimeout: 5 * time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer analyzer.Close()
	shufflers := make([]*cluster.Shuffler, r)
	for j := 0; j < r; j++ {
		sh, err := cluster.NewShuffler(cluster.ShufflerConfig{
			Index:       j,
			Topology:    topo,
			Listener:    lns[j],
			NR:          nr,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.New(100 + uint64(j)),
			SealTimeout: 5 * time.Minute,
		})
		if err != nil {
			return 0, err
		}
		shufflers[j] = sh
		go sh.Run()
	}
	defer func() {
		for _, sh := range shufflers {
			sh.Close()
		}
	}()

	start := time.Now()
	cl, err := cluster.DialClient(topo, fo, ahe.PublicKey(priv), rng.New(31), 0)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	if err := cl.SendValues(0, values, rng.New(22)); err != nil {
		return 0, err
	}
	if err := cl.Flush(); err != nil {
		return 0, err
	}
	col, err := analyzer.Collect(len(values))
	if err != nil {
		return 0, err
	}
	sink(col.Estimates)
	return float64(time.Since(start).Nanoseconds()), nil
}
