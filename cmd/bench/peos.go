package main

// The peos suite times the cryptographic path — Algorithm 1 end to
// end — in both deployment shapes so the crypto cost enters the perf
// trajectory next to the aggregation and service suites:
//
//   - in-process: protocol.PEOS.Run (the simulator), with the paper's
//     per-party cost accounting (transport.Meter bytes).
//   - cluster: the role-separated tier of internal/cluster — R real
//     shuffler nodes + analyzer node over loopback TCP, real framing,
//     real DGK ciphertext (de)serialization on every hop.
//
// The delta between the two is the real price of the network layer;
// the absolute numbers trace the DGK/EOS cost model of Table III.

import (
	"fmt"
	"log"
	"net"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

type peosCase struct {
	R       int `json:"r"`
	N       int `json:"n"`
	NR      int `json:"nr"`
	D       int `json:"d"`
	KeyBits int `json:"key_bits"`
	// DecryptWorkers is the analyzer/server decryption fan-out for this
	// case (0 = GOMAXPROCS); FastPath records whether the DGK
	// fixed-base/windowed kernels were enabled (false = the naive
	// reference path, the ablation baseline).
	DecryptWorkers int  `json:"decrypt_workers"`
	FastPath       bool `json:"fast_path"`
	// In-process Algorithm 1 (protocol.PEOS.Run).
	InProcessSeconds     float64 `json:"in_process_seconds"`
	InProcessNsPerReport float64 `json:"in_process_ns_per_report"`
	// Role-separated cluster over loopback TCP (internal/cluster).
	ClusterSeconds     float64 `json:"cluster_seconds"`
	ClusterNsPerReport float64 `json:"cluster_ns_per_report"`
	// Per-party communication of the in-process run (Table III view).
	UserSentBytes     int64 `json:"user_sent_bytes"`
	ShufflerSentBytes int64 `json:"shuffler0_sent_bytes"`
	ServerRecvBytes   int64 `json:"server_recv_bytes"`
}

// peosScalingCase is one row of the analyzer scale-out sweep: the same
// collection round, analyzer tier sharded A ways by domain partition.
// CoordinatorWindowWords is the coordinator's share of the post-shuffle
// vector — the words IT must decrypt; the rest decrypt on the other
// shards. The scaling signal is CoordinatorDecryptNsPerReport (measured
// ns/word × window words / n): that is the per-report decrypt bill of
// the busiest node, and it drops as 1/A. ClusterSeconds is the measured
// wall clock of the whole round; on a host with at least A cores the
// wall clock follows the decrypt bill, on fewer cores (all nodes in one
// process sharing a core, as in CI) it stays flat — which is why the
// decrypt bill, not the wall clock, carries the speedup column.
type peosScalingCase struct {
	Analyzers                     int     `json:"analyzers"`
	R                             int     `json:"r"`
	N                             int     `json:"n"`
	NR                            int     `json:"nr"`
	KeyBits                       int     `json:"key_bits"`
	FastPath                      bool    `json:"fast_path"`
	CoordinatorWindowWords        int     `json:"coordinator_window_words"`
	CoordinatorDecryptNsPerReport float64 `json:"coordinator_decrypt_ns_per_report"`
	ClusterSeconds                float64 `json:"cluster_seconds"`
	ClusterNsPerReport            float64 `json:"cluster_ns_per_report"`
	DecryptSpeedupVsOneAnalyzer   float64 `json:"decrypt_speedup_vs_one_analyzer"`
}

// peosShufflerScalingCase is one row of the shuffler worker-pool sweep
// (DESIGN.md §14): the same collection round with the shufflers'
// ciphertext passes fanned out over Workers goroutines and the wire
// chunk-streamed. WorkerCryptoNsPerReport is the per-report crypto bill
// of one worker of the busiest (ciphertext-path) shuffler — measured
// per-op ns times that node's exact per-word op count, divided across
// the workers — and it drops as 1/Workers. ClusterSeconds is the
// measured wall clock of the whole round; on a host with at least
// Workers cores the wall clock follows the crypto bill, on fewer cores
// (every node sharing one core, as in CI) it stays flat — which is why
// the crypto bill, not the wall clock, carries the speedup column.
type peosShufflerScalingCase struct {
	Workers                  int     `json:"workers"`
	ChunkWords               int     `json:"chunk_words"`
	R                        int     `json:"r"`
	N                        int     `json:"n"`
	NR                       int     `json:"nr"`
	KeyBits                  int     `json:"key_bits"`
	FastPath                 bool    `json:"fast_path"`
	AddPlainNsPerOp          float64 `json:"add_plain_ns_per_op"`
	RerandomizeNsPerOp       float64 `json:"rerandomize_ns_per_op"`
	WorkerCryptoNsPerReport  float64 `json:"worker_crypto_ns_per_report"`
	CryptoSpeedupVsOneWorker float64 `json:"crypto_speedup_vs_one_worker"`
	ClusterSeconds           float64 `json:"cluster_seconds"`
	ClusterNsPerReport       float64 `json:"cluster_ns_per_report"`
	PoolHits                 uint64  `json:"pool_hits"`
	PoolMisses               uint64  `json:"pool_misses"`
}

type peosReport struct {
	Benchmark   string     `json:"benchmark"`
	GeneratedBy string     `json:"generated_by"`
	Note        string     `json:"note"`
	Cases       []peosCase `json:"cases"`
	// AnalyzerScaling sweeps the sharded analyzer tier at the first
	// (key_bits, r, workers) point of the grid.
	AnalyzerScaling []peosScalingCase `json:"analyzer_scaling,omitempty"`
	// ShufflerScaling sweeps the shufflers' worker pools over the
	// -peos-shuffler-workers counts with the chunk-streamed wire on.
	ShufflerScaling []peosShufflerScalingCase `json:"shuffler_scaling,omitempty"`
}

func runPEOSSuite(n, d, nr int, keyBitsList, rs, workersList, analyzerCounts, shufflerWorkers []int, chunkWords int, naive bool) (*peosReport, error) {
	fo := ldp.NewGRR(d, 2)
	src := rng.New(11)
	values := make([]int, n)
	for i := range values {
		values[i] = src.Intn(d)
	}
	rep := &peosReport{
		Benchmark:   "PEOS",
		GeneratedBy: "cmd/bench",
		Note: "in_process is protocol.PEOS.Run; cluster is internal/cluster " +
			"(R shuffler nodes + analyzer over loopback TCP); one warm key pair " +
			"per key size, estimates of the two paths are bit-identical by the " +
			"conformance tests; fast_path=false is the naive-AHE ablation",
	}
	for _, keyBits := range keyBitsList {
		priv, err := ahe.GenerateDGK(keyBits, 64)
		if err != nil {
			return nil, err
		}
		priv.SetFastPath(!naive)
		for _, r := range rs {
			for _, workers := range workersList {
				c := peosCase{R: r, N: n, NR: nr, D: d, KeyBits: keyBits,
					DecryptWorkers: workers, FastPath: !naive}

				var meter *transport.Meter
				inNs := timeIt(func() {
					p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(21))
					if err != nil {
						log.Fatal(err)
					}
					p.DecryptWorkers = workers
					res, err := p.Run(values, rng.New(22))
					if err != nil {
						log.Fatal(err)
					}
					meter = res.Meter
					sink(res.Estimates)
				})
				c.InProcessSeconds = inNs / 1e9
				c.InProcessNsPerReport = inNs / float64(n)
				c.UserSentBytes = meter.Stats(protocol.PartyUsers).SentBytes
				c.ShufflerSentBytes = meter.Stats(protocol.ShufflerName(0)).SentBytes
				c.ServerRecvBytes = meter.Stats(protocol.PartyServer).RecvBytes

				clNs, err := timePEOSCluster(fo, priv, values, r, nr, workers, 1, 0, 0)
				if err != nil {
					return nil, err
				}
				c.ClusterSeconds = clNs / 1e9
				c.ClusterNsPerReport = clNs / float64(n)

				fmt.Printf("peos r=%d n=%d nr=%d key=%d workers=%d fast=%v: in-process %.2fs (%.0f ns/report)  cluster %.2fs (%.0f ns/report)\n",
					r, n, nr, keyBits, workers, !naive,
					c.InProcessSeconds, c.InProcessNsPerReport, c.ClusterSeconds, c.ClusterNsPerReport)
				rep.Cases = append(rep.Cases, c)
			}
		}
	}

	// Analyzer scale-out sweep: the same synthetic round, sharded wider
	// and wider. The sweep runs on the naive-AHE path deliberately:
	// there the analyzer's decrypt work is the dominant term of the
	// round (~1.1ms/word vs ~0.2ms/word of shuffler re-randomization),
	// which is exactly the regime the sharded tier exists for — with
	// the fixed-base fast path a single analyzer decrypts faster than
	// the shuffle chain feeds it. Estimates stay bit-identical at every
	// width (the conformance suite proves it). The per-word decrypt
	// cost is measured on this key so the coordinator's decrypt bill
	// per row is a measurement, not a model.
	if len(analyzerCounts) > 0 {
		keyBits, r, workers := keyBitsList[len(keyBitsList)-1], rs[0], 1
		priv, err := ahe.GenerateDGK(keyBits, 64)
		if err != nil {
			return nil, err
		}
		priv.SetFastPath(false)
		ct, err := priv.Encrypt(3)
		if err != nil {
			return nil, err
		}
		const decSamples = 64
		decNsPerWord := timeIt(func() {
			for i := 0; i < decSamples; i++ {
				m, err := priv.Decrypt(ct)
				if err != nil {
					log.Fatal(err)
				}
				sink([]float64{float64(m)})
			}
		}) / decSamples
		var baseDecrypt float64
		for _, analyzers := range analyzerCounts {
			plan, err := cluster.EvenPlan(d, analyzers)
			if err != nil {
				return nil, err
			}
			clNs, err := timePEOSCluster(fo, priv, values, r, nr, workers, analyzers, 0, 0)
			if err != nil {
				return nil, err
			}
			window := plan.Cuts(n + nr)[1]
			sc := peosScalingCase{
				Analyzers:                     analyzers,
				R:                             r,
				N:                             n,
				NR:                            nr,
				KeyBits:                       keyBits,
				FastPath:                      false,
				CoordinatorWindowWords:        window,
				CoordinatorDecryptNsPerReport: float64(window) * decNsPerWord / float64(n),
				ClusterSeconds:                clNs / 1e9,
				ClusterNsPerReport:            clNs / float64(n),
			}
			if baseDecrypt == 0 {
				baseDecrypt = sc.CoordinatorDecryptNsPerReport
			}
			sc.DecryptSpeedupVsOneAnalyzer = baseDecrypt / sc.CoordinatorDecryptNsPerReport
			fmt.Printf("peos scaling analyzers=%d r=%d key=%d: coordinator window %d/%d words, decrypt %.0f ns/report (%.2fx), round %.2fs\n",
				analyzers, r, keyBits, sc.CoordinatorWindowWords, n+nr,
				sc.CoordinatorDecryptNsPerReport, sc.DecryptSpeedupVsOneAnalyzer, sc.ClusterSeconds)
			rep.AnalyzerScaling = append(rep.AnalyzerScaling, sc)
		}
	}

	// Shuffler worker-pool sweep (DESIGN.md §14): r = 2 on the fast
	// path, where one hide-and-seek round costs the ciphertext-path
	// shuffler exactly 2 AddPlain + 2 Rerandomize per word (the reshare
	// split, the shuffle rerandomize, and the final fold). Both per-op
	// costs are measured on this key with the scratch kernels — the
	// same code the workers run — so each row's per-worker crypto bill
	// is a measurement divided across the workers, not a model.
	// Estimates stay bit-identical at every worker count and chunk size
	// (TestParallelEOSConformance proves it under -race).
	if len(shufflerWorkers) > 0 {
		keyBits := keyBitsList[len(keyBitsList)-1]
		const r = 2
		priv, err := ahe.GenerateDGK(keyBits, 64)
		if err != nil {
			return nil, err
		}
		priv.SetFastPath(true)
		pub := ahe.PublicKey(priv).(ahe.ScratchOps)
		ct, err := priv.Encrypt(3)
		if err != nil {
			return nil, err
		}
		sc := pub.NewScratch()
		const opSamples = 256
		addNs := timeIt(func() {
			for i := 0; i < opSamples; i++ {
				if err := pub.AddPlainInto(ct, ct, uint64(i), sc); err != nil {
					log.Fatal(err)
				}
			}
		}) / opSamples
		rerNs := timeIt(func() {
			for i := 0; i < opSamples; i++ {
				if err := pub.RerandomizeInto(ct, ct, sc); err != nil {
					log.Fatal(err)
				}
			}
		}) / opSamples
		total := float64(n + nr)
		var base float64
		for _, w := range shufflerWorkers {
			if w < 1 {
				w = 1
			}
			hits0, misses0 := priv.RandomizerPoolStats()
			clNs, err := timePEOSCluster(fo, priv, values, r, nr, 0, 1, w, chunkWords)
			if err != nil {
				return nil, err
			}
			hits1, misses1 := priv.RandomizerPoolStats()
			row := peosShufflerScalingCase{
				Workers:                 w,
				ChunkWords:              chunkWords,
				R:                       r,
				N:                       n,
				NR:                      nr,
				KeyBits:                 keyBits,
				FastPath:                true,
				AddPlainNsPerOp:         addNs,
				RerandomizeNsPerOp:      rerNs,
				WorkerCryptoNsPerReport: (2*addNs + 2*rerNs) * total / float64(n) / float64(w),
				ClusterSeconds:          clNs / 1e9,
				ClusterNsPerReport:      clNs / float64(n),
				PoolHits:                hits1 - hits0,
				PoolMisses:              misses1 - misses0,
			}
			if base == 0 {
				base = row.WorkerCryptoNsPerReport
			}
			row.CryptoSpeedupVsOneWorker = base / row.WorkerCryptoNsPerReport
			fmt.Printf("peos shuffler scaling workers=%d chunk=%d key=%d: crypto %.0f ns/report/worker (%.2fx), pool %d hits / %d misses, round %.2fs\n",
				w, chunkWords, keyBits, row.WorkerCryptoNsPerReport, row.CryptoSpeedupVsOneWorker,
				row.PoolHits, row.PoolMisses, row.ClusterSeconds)
			rep.ShufflerScaling = append(rep.ShufflerScaling, row)
		}
	}
	return rep, nil
}

// timePEOSCluster stands up a fresh loopback cluster — the analyzer
// tier sharded `analyzers` ways, each shuffler running `shufWorkers`
// crypto goroutines with `chunkWords`-element wire windows — and times
// one full collection round (client submission through served
// estimate).
func timePEOSCluster(fo ldp.FrequencyOracle, priv *ahe.DGKPrivateKey, values []int, r, nr, workers, analyzers, shufWorkers, chunkWords int) (float64, error) {
	lns := make([]net.Listener, r)
	topo := cluster.Topology{Shufflers: make([]string, r), Analyzers: make([]string, analyzers)}
	for j := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		lns[j] = ln
		topo.Shufflers[j] = ln.Addr().String()
	}
	alns := make([]net.Listener, analyzers)
	for s := range alns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		alns[s] = ln
		topo.Analyzers[s] = ln.Addr().String()
	}
	nodes := make([]*cluster.Analyzer, analyzers)
	for s := range nodes {
		node, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{
			Topology:       topo,
			Listener:       alns[s],
			FO:             fo,
			NR:             nr,
			Priv:           priv,
			Shard:          s,
			Workers:        workers,
			CollectTimeout: 5 * time.Minute,
		})
		if err != nil {
			return 0, err
		}
		defer node.Close()
		nodes[s] = node
	}
	analyzer := nodes[0]
	shufflers := make([]*cluster.Shuffler, r)
	for j := 0; j < r; j++ {
		sh, err := cluster.NewShuffler(cluster.ShufflerConfig{
			Index:       j,
			Topology:    topo,
			Listener:    lns[j],
			NR:          nr,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.New(100 + uint64(j)),
			SealTimeout: 5 * time.Minute,
			Workers:     shufWorkers,
			ChunkWords:  chunkWords,
		})
		if err != nil {
			return 0, err
		}
		shufflers[j] = sh
		go sh.Run()
	}
	defer func() {
		for _, sh := range shufflers {
			sh.Close()
		}
	}()

	start := time.Now()
	cl, err := cluster.DialClient(topo, fo, ahe.PublicKey(priv), rng.New(31), 0)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	if err := cl.SendValues(0, values, rng.New(22)); err != nil {
		return 0, err
	}
	if err := cl.Flush(); err != nil {
		return 0, err
	}
	col, err := analyzer.Collect(len(values))
	if err != nil {
		return 0, err
	}
	sink(col.Estimates)
	return float64(time.Since(start).Nanoseconds()), nil
}
