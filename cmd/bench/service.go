package main

// The service throughput suite: the streaming ingestion tier
// (internal/service) measured end to end over net.Pipe connections at
// several client counts, written as BENCH_service.json. The workload
// matches BenchmarkServiceThroughput (root bench_test.go) so the JSON
// trajectory and `go test -bench` agree on what is being measured.

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
)

// persistenceCase measures the durable tier's cost: the same workload
// with the write-ahead log off and at each fsync policy, so the JSON
// records exactly what durability buys and what it charges.
type persistenceCase struct {
	// Mode is "off" (no WAL) or the fsync policy ("none", "batch",
	// "always").
	Mode          string  `json:"mode"`
	GoMaxProcs    int     `json:"go_max_procs"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	NsPerReport   float64 `json:"ns_per_report"`
	// SlowdownVsOff is the throughput ratio off/this-mode (1.0 = free).
	SlowdownVsOff float64 `json:"slowdown_vs_off"`
}

type serviceCase struct {
	Clients       int     `json:"clients"`
	GoMaxProcs    int     `json:"go_max_procs"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	NsPerReport   float64 `json:"ns_per_report"`
	// SpeedupVs1 is throughput relative to the single-connection run.
	SpeedupVs1 float64 `json:"speedup_vs_1_client"`
}

// wireCase is one entry of the session-vs-legacy comparison: the same
// workload and durability level, differing only in the wire protocol
// the clients speak.
type wireCase struct {
	// Wire is "legacy" (per-report ECIES frames) or "session" (one
	// handshake, then AEAD-sealed batches of DefaultClientBatch).
	Wire          string  `json:"wire"`
	Persist       string  `json:"persist"`
	GoMaxProcs    int     `json:"go_max_procs"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	NsPerReport   float64 `json:"ns_per_report"`
	// SpeedupVsLegacy is the throughput ratio this-wire/legacy (the
	// legacy row records 1.0).
	SpeedupVsLegacy float64 `json:"speedup_vs_legacy"`
}

type serviceBenchReport struct {
	Benchmark   string `json:"benchmark"`
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Oracle      string `json:"oracle"`
	N           int    `json:"n"`
	D           int    `json:"d"`
	DPrime      int    `json:"d_prime"`
	BatchSize   int    `json:"batch_size"`
	// Epochs is how many collection rounds the stream was cut into
	// (1 = the one-shot pipeline; more exercises epoch rotation and
	// sealing on the hot path).
	Epochs int           `json:"epochs"`
	Note   string        `json:"note,omitempty"`
	Cases  []serviceCase `json:"cases"`
	// Persistence is the durability on/off comparison, measured at the
	// first client count (legacy wire).
	Persistence []persistenceCase `json:"persistence"`
	// SessionVsLegacy compares the two wire protocols at the first
	// client count with the WAL at fsync=batch — the headline number of
	// the session protocol: the per-report ECIES wall against one
	// handshake plus AEAD-sealed batches.
	SessionVsLegacy []wireCase `json:"session_vs_legacy"`
}

// runServiceSuite streams n pre-randomized SOLH reports through a
// fresh service per (clients) case and records wall-clock throughput
// from first submission to drained histogram. epochs > 1 auto-rotates
// the stream into that many collection rounds, so rotation and epoch
// sealing are part of the measured path.
func runServiceSuite(n, d, batch, epochs int, clientCounts []int) (serviceBenchReport, error) {
	const dPrime, eps = 16, 3
	fo := ldp.NewSOLH(d, dPrime, eps)
	key, err := ecies.GenerateKey()
	if err != nil {
		return serviceBenchReport{}, err
	}
	values := make([]int, n)
	for i := range values {
		values[i] = i % d
	}
	reports := ldp.RandomizeParallel(fo, values, 1, 0)

	if epochs < 1 {
		epochs = 1
	}
	rep := serviceBenchReport{
		Benchmark:   "ServiceThroughput",
		GeneratedBy: "cmd/bench",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Oracle:      fo.Name(),
		N:           n,
		D:           d,
		DPrime:      dPrime,
		BatchSize:   batch,
		Epochs:      epochs,
	}
	if rep.GoMaxProcs == 1 {
		rep.Note = "single-CPU runner: client encryption and the worker pool " +
			"share one core, so throughput is flat across client counts; " +
			"multi-core machines scale until the decrypt pool saturates"
	}
	for _, clients := range clientCounts {
		ns, err := timeServiceRun(fo, key, reports, clients, batch, epochs, "off", "legacy")
		if err != nil {
			return serviceBenchReport{}, err
		}
		c := serviceCase{
			Clients:       clients,
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			ReportsPerSec: float64(n) / (ns / 1e9),
			NsPerReport:   ns / float64(n),
		}
		if len(rep.Cases) > 0 {
			c.SpeedupVs1 = c.ReportsPerSec / rep.Cases[0].ReportsPerSec
		} else {
			c.SpeedupVs1 = 1
		}
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("service: clients=%-3d %10.0f reports/s  %8.0f ns/report  (%.2fx vs 1 client)\n",
			c.Clients, c.ReportsPerSec, c.NsPerReport, c.SpeedupVs1)
	}

	// The persistence delta: one client count, WAL off vs every fsync
	// policy — the price of crash recovery under each durability level.
	for _, mode := range []string{"off", "none", "batch", "always"} {
		ns, err := timeServiceRun(fo, key, reports, clientCounts[0], batch, epochs, mode, "legacy")
		if err != nil {
			return serviceBenchReport{}, err
		}
		pc := persistenceCase{
			Mode:          mode,
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			ReportsPerSec: float64(n) / (ns / 1e9),
			NsPerReport:   ns / float64(n),
		}
		if len(rep.Persistence) > 0 {
			pc.SlowdownVsOff = rep.Persistence[0].ReportsPerSec / pc.ReportsPerSec
		} else {
			pc.SlowdownVsOff = 1
		}
		rep.Persistence = append(rep.Persistence, pc)
		fmt.Printf("service: persist=%-7s %10.0f reports/s  %8.0f ns/report  (%.2fx slower than off)\n",
			pc.Mode, pc.ReportsPerSec, pc.NsPerReport, pc.SlowdownVsOff)
	}

	// The wire-protocol comparison the session path exists for: same
	// workload, same fsync=batch durability, legacy per-report ECIES
	// against the batched session AEAD.
	for _, wire := range []string{"legacy", "session"} {
		ns, err := timeServiceRun(fo, key, reports, clientCounts[0], batch, epochs, "batch", wire)
		if err != nil {
			return serviceBenchReport{}, err
		}
		wc := wireCase{
			Wire:          wire,
			Persist:       "batch",
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			ReportsPerSec: float64(n) / (ns / 1e9),
			NsPerReport:   ns / float64(n),
		}
		if len(rep.SessionVsLegacy) > 0 {
			wc.SpeedupVsLegacy = wc.ReportsPerSec / rep.SessionVsLegacy[0].ReportsPerSec
		} else {
			wc.SpeedupVsLegacy = 1
		}
		rep.SessionVsLegacy = append(rep.SessionVsLegacy, wc)
		fmt.Printf("service: wire=%-8s %10.0f reports/s  %8.0f ns/report  (%.2fx vs legacy, persist=batch)\n",
			wc.Wire, wc.ReportsPerSec, wc.NsPerReport, wc.SpeedupVsLegacy)
	}
	return rep, nil
}

func timeServiceRun(fo ldp.FrequencyOracle, key *ecies.PrivateKey, reports []ldp.Report, clients, batch, epochs int, persist, wire string) (float64, error) {
	epochReports := 0
	if epochs > 1 {
		epochReports = (len(reports) + epochs - 1) / epochs
	}
	best := 0.0
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; attempt < 3; attempt++ {
		cfg := service.Config{
			FO: fo, Key: key, BatchSize: batch, ShuffleSeed: uint64(attempt + 2),
			EpochReports: epochReports,
		}
		if persist != "off" {
			// A fresh data directory per attempt: New refuses to reuse
			// one, exactly so a benchmark cannot shadow real state.
			dir, err := os.MkdirTemp("", "shuffledp-bench-wal-")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			cfg.DataDir = dir
			if cfg.Sync, err = store.ParseSyncPolicy(persist); err != nil {
				return 0, err
			}
		}
		svc, err := service.New(cfg)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		errc := make(chan error, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			clientSide, serverSide := net.Pipe()
			if err := svc.Ingest(serverSide); err != nil {
				return 0, err
			}
			var cl *service.Client
			if wire == "session" {
				cl, err = service.NewSessionClient(fo, key.Public(), nil, clientSide, 0)
			} else {
				cl, err = service.NewClient(fo, key.Public(), nil, clientSide)
			}
			if err != nil {
				return 0, err
			}
			wg.Add(1)
			go func(c int, cl *service.Client) {
				defer wg.Done()
				// Close on every exit path so a send error cannot leave a
				// reader open and hang Drain.
				defer clientSide.Close()
				for j := c; j < len(reports); j += clients {
					if err := cl.SendReport(reports[j]); err != nil {
						errc <- err
						return
					}
				}
				errc <- cl.Close()
			}(c, cl)
		}
		snap, err := svc.Drain()
		if err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				return 0, err
			}
		}
		if snap.Reports != len(reports) {
			return 0, fmt.Errorf("service run aggregated %d reports, want %d", snap.Reports, len(reports))
		}
		if best == 0 || ns < best {
			best = ns
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return best, nil
}
