package main

import "testing"

// A tiny in-test run of the peos suite: the JSON writer's fields must
// be populated and positive, and the cluster path must complete — the
// same guarantee the CI bench-smoke job checks from the outside.
func TestPEOSSuiteSmoke(t *testing.T) {
	rep, err := runPEOSSuite(40, 8, 4, []int{512}, []int{2}, []int{0}, []int{1, 2}, []int{1, 2}, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 1 {
		t.Fatalf("want 1 case, got %d", len(rep.Cases))
	}
	c := rep.Cases[0]
	if c.R != 2 || c.N != 40 || c.NR != 4 || c.KeyBits != 512 {
		t.Fatalf("case parameters %+v", c)
	}
	if !c.FastPath || c.DecryptWorkers != 0 {
		t.Fatalf("sweep fields not populated: %+v", c)
	}
	if c.InProcessSeconds <= 0 || c.ClusterSeconds <= 0 {
		t.Fatalf("timings not populated: %+v", c)
	}
	if c.UserSentBytes <= 0 || c.ShufflerSentBytes <= 0 || c.ServerRecvBytes <= 0 {
		t.Fatalf("per-party bytes not populated: %+v", c)
	}
	// Users send one 8-byte share per shuffler plus one ciphertext
	// (CiphertextBytes = keyBits/8 = 64); the exact total is pinned by
	// the protocol's meter accounting.
	if want := int64(40 * (8 + 64)); c.UserSentBytes != want {
		t.Fatalf("user bytes %d, want %d", c.UserSentBytes, want)
	}
	// The analyzer scale-out sweep: one row per requested shard count,
	// speedup relative to the first row, coordinator window strictly
	// smaller once the tier is sharded.
	if len(rep.AnalyzerScaling) != 2 {
		t.Fatalf("want 2 scaling rows, got %d", len(rep.AnalyzerScaling))
	}
	one, two := rep.AnalyzerScaling[0], rep.AnalyzerScaling[1]
	if one.Analyzers != 1 || two.Analyzers != 2 {
		t.Fatalf("scaling rows %+v", rep.AnalyzerScaling)
	}
	if one.ClusterSeconds <= 0 || two.ClusterSeconds <= 0 {
		t.Fatalf("scaling timings not populated: %+v", rep.AnalyzerScaling)
	}
	if one.CoordinatorWindowWords != 44 || two.CoordinatorWindowWords != 22 {
		t.Fatalf("coordinator windows %d, %d", one.CoordinatorWindowWords, two.CoordinatorWindowWords)
	}
	// The acceptance headline: the per-report decrypt bill of the
	// busiest node halves when the tier is sharded two ways.
	if one.CoordinatorDecryptNsPerReport <= 0 ||
		two.CoordinatorDecryptNsPerReport != one.CoordinatorDecryptNsPerReport/2 {
		t.Fatalf("decrypt bills %+v", rep.AnalyzerScaling)
	}
	if one.DecryptSpeedupVsOneAnalyzer != 1 || two.DecryptSpeedupVsOneAnalyzer != 2 {
		t.Fatalf("decrypt speedups %+v", rep.AnalyzerScaling)
	}
	// The shuffler worker sweep: one row per requested worker count, the
	// per-worker crypto bill halving from 1 to 2 workers, pool traffic
	// recorded, rounds completing with the chunked wire on.
	if len(rep.ShufflerScaling) != 2 {
		t.Fatalf("want 2 shuffler scaling rows, got %d", len(rep.ShufflerScaling))
	}
	w1, w2 := rep.ShufflerScaling[0], rep.ShufflerScaling[1]
	if w1.Workers != 1 || w2.Workers != 2 || w1.ChunkWords != 16 || w2.ChunkWords != 16 {
		t.Fatalf("shuffler scaling rows %+v", rep.ShufflerScaling)
	}
	if w1.ClusterSeconds <= 0 || w2.ClusterSeconds <= 0 || w1.WorkerCryptoNsPerReport <= 0 {
		t.Fatalf("shuffler scaling timings not populated: %+v", rep.ShufflerScaling)
	}
	if w2.WorkerCryptoNsPerReport != w1.WorkerCryptoNsPerReport/2 {
		t.Fatalf("worker crypto bills %+v", rep.ShufflerScaling)
	}
	if w1.CryptoSpeedupVsOneWorker != 1 || w2.CryptoSpeedupVsOneWorker != 2 {
		t.Fatalf("crypto speedups %+v", rep.ShufflerScaling)
	}
	if w1.PoolHits+w1.PoolMisses == 0 || w2.PoolHits+w2.PoolMisses == 0 {
		t.Fatalf("pool stats not populated: %+v", rep.ShufflerScaling)
	}
}
