// Command histogram estimates a differentially private histogram from
// a file (or stdin) of categorical values, one per line, using the
// shuffle model with the automatically chosen mechanism (GRR or SOLH,
// §IV-B3). Unknown strings are assigned indices on first sight; the
// output maps them back.
//
// Usage:
//
//	histogram [-eps 1.0] [-delta 1e-9] [-top 20] [file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"shuffledp"
)

func main() {
	eps := flag.Float64("eps", 1, "central privacy budget epsC")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	top := flag.Int("top", 20, "print the top-k estimated values")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	// Read values; build the string <-> index dictionary.
	index := map[string]int{}
	var labels []string
	var values []int
	scanner := bufio.NewScanner(in)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		idx, ok := index[line]
		if !ok {
			idx = len(labels)
			index[line] = idx
			labels = append(labels, line)
		}
		values = append(values, idx)
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	if len(labels) < 2 {
		log.Fatal("need at least 2 distinct values")
	}

	res, err := shuffledp.EstimateHistogram(values, len(labels), shuffledp.Options{
		EpsilonCentral: *eps,
		Delta:          *delta,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d users, d=%d values, mechanism=%s (epsL=%.3f, d'=%d)\n",
		len(values), len(labels), res.Mechanism, res.EpsilonLocal, res.DPrime)
	fmt.Printf("predicted per-value MSE: %.3e\n\n", res.PredictedMSE)

	order := make([]int, len(labels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Estimates[order[a]] > res.Estimates[order[b]]
	})
	if *top > len(order) {
		*top = len(order)
	}
	fmt.Println("rank  estimate   value")
	for i := 0; i < *top; i++ {
		v := order[i]
		fmt.Printf("%4d  %8.4f   %s\n", i+1, res.Estimates[v], labels[v])
	}
}
