// Command table3 regenerates Table III: per-party computation and
// communication of the SS and PEOS protocols with r = 3 and 7
// shufflers. The paper's configuration is n = 10^6 with DGK-3072
// (hours of exponentiations on one machine); pass -n and -keybits to
// choose your scale — per-user and per-report costs are scale-free and
// totals grow linearly in n (§VII-D).
//
// Usage:
//
//	table3 [-n users] [-nr fakes] [-keybits b] [-rs 3,7]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"shuffledp/internal/experiment"
)

func main() {
	n := flag.Int("n", 2000, "number of users")
	nr := flag.Int("nr", 200, "number of fake reports")
	keyBits := flag.Int("keybits", 1024, "DGK modulus bits (paper: 3072)")
	rsFlag := flag.String("rs", "3,7", "comma-separated shuffler counts")
	seed := flag.Uint64("seed", 4, "random seed")
	fast := flag.Bool("fast", false, "paper's cost model: skip ciphertext rerandomization")
	flag.Parse()

	var rs []int
	for _, part := range strings.Split(*rsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -rs value %q: %v", part, err)
		}
		rs = append(rs, v)
	}
	cfg := experiment.Table3Config{
		N:           *n,
		NR:          *nr,
		Rs:          rs,
		KeyBits:     *keyBits,
		DPrime:      16,
		EpsL:        2,
		Seed:        *seed,
		FastShuffle: *fast,
	}
	rows, err := experiment.Table3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table III — SS vs PEOS overhead (n=%d, nr=%d, DGK-%d)\n", *n, *nr, *keyBits)
	fmt.Print(experiment.FormatTable3(rows))
}
