// Command table2 regenerates Table II: SOLH's optimal d' and the
// utility of SOLH (optimal and fixed d') versus RAP_R on the
// Kosarak-shaped dataset (d = 42,178).
//
// Usage:
//
//	table2 [-scale k] [-trials t] [-delta d] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"

	"shuffledp/internal/dataset"
	"shuffledp/internal/experiment"
)

func main() {
	scale := flag.Int("scale", 1, "divide the Kosarak n by this factor")
	trials := flag.Int("trials", 20, "trials per cell")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 2, "random seed")
	flag.Parse()

	ds := dataset.Scaled(dataset.Kosarak, *scale, *seed)
	cfg := experiment.DefaultTable2Config()
	cfg.Trials = *trials
	cfg.Delta = *delta
	cfg.Seed = *seed
	rows, err := experiment.Table2(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table II — SOLH vs RAP_R on %s (n=%d, d=%d, %d trials)\n",
		ds.Name, ds.N(), ds.D, *trials)
	fmt.Print(experiment.FormatTable2(rows, cfg.FixedDs))
}
