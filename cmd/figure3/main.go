// Command figure3 regenerates Figure 3: MSE of every method versus the
// central budget on the IPUMS-shaped dataset (d = 915). The paper runs
// n = 602,325 and 100 trials; -scale and -trials trade fidelity for
// runtime (costs are O(trials * methods * d) binomial draws).
//
// Usage:
//
//	figure3 [-scale k] [-trials t] [-delta d] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"

	"shuffledp/internal/dataset"
	"shuffledp/internal/experiment"
)

func main() {
	scale := flag.Int("scale", 1, "divide the dataset n by this factor")
	trials := flag.Int("trials", 20, "trials per (method, budget)")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 1, "random seed")
	which := flag.String("dataset", "ipums", "ipums or kosarak (the paper shows only IPUMS because SH gets no amplification at Kosarak's d; pass kosarak to check that claim)")
	flag.Parse()

	gen := dataset.IPUMS
	if *which == "kosarak" {
		gen = dataset.Kosarak
	} else if *which != "ipums" {
		log.Fatalf("unknown -dataset %q", *which)
	}
	ds := dataset.Scaled(gen, *scale, *seed)
	cfg := experiment.Figure3Config{
		EpsCs:  []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Trials: *trials,
		Delta:  *delta,
		Seed:   *seed,
	}
	points, err := experiment.Figure3(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 3 — MSE vs epsC on %s (n=%d, d=%d, %d trials, delta=%.0e)\n",
		ds.Name, ds.N(), ds.D, *trials, *delta)
	fmt.Print(experiment.FormatCurve(points, experiment.MethodNames))
}
