// Command shuffled runs the shuffle model as a real streaming
// deployment over TCP loopback (Figure 1 of the paper, §III): the
// analysis server hosts the internal/service ingestion tier — batch
// shuffler plus a decrypt/aggregate worker pool — and several
// concurrent collector gateways stream the users' ECIES-encrypted
// reports into it. The live estimate is printed from mid-stream
// Snapshots while ingestion is still running; Drain prints the final
// histogram and the per-party cost account (transport.Meter).
//
// Usage:
//
//	shuffled [-n users] [-d domain] [-eps epsC] [-seed s] [-clients c] [-batch b]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"shuffledp/internal/amplify"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/transport"
)

func main() {
	n := flag.Int("n", 20000, "number of users")
	d := flag.Int("d", 64, "domain size")
	epsC := flag.Float64("eps", 1, "central privacy budget")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 1, "random seed")
	clients := flag.Int("clients", 8, "concurrent collector connections")
	batch := flag.Int("batch", 512, "shuffle-batch size (the anonymity granularity)")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}

	values := dataset.Synthetic("demo", *n, *d, 1.3, *seed).Values

	// Parameterize SOLH for the target central budget.
	m := amplify.BlanketM(*epsC, *n, *delta)
	dPrime := amplify.OptimalDPrime(m, *d)
	epsL, err := amplify.LocalEpsilonSOLH(*epsC, dPrime, *n, *delta)
	if err != nil {
		log.Fatal(err)
	}
	fo := ldp.NewSOLH(*d, dPrime, epsL)
	fmt.Printf("SOLH(epsL=%.3f, d'=%d) -> (%.2f, %.0e)-DP after shuffling\n",
		epsL, dPrime, *epsC, *delta)

	key, err := ecies.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}

	var meter transport.Meter
	svc, err := service.New(service.Config{
		FO:          fo,
		Key:         key,
		BatchSize:   *batch,
		ShuffleSeed: *seed + 1,
		Meter:       &meter,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingestion service listening on %s (%d gateways, batch=%d)\n",
		ln.Addr(), *clients, *batch)
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(ln) }()

	// Randomize on the users' side of the ledger. The shard substreams
	// make the report multiset a pure function of -seed, so the final
	// histogram is bit-identical to netproto.RunPipeline at this seed, no
	// matter how the gateways interleave (DESIGN.md §6).
	var reports []ldp.Report
	meter.Track(service.PartyUsers, func() {
		reports = ldp.RandomizeParallel(fo, values, *seed, 0)
	})

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			cl, err := service.NewClient(fo, key.Public(), nil, conn)
			if err != nil {
				log.Fatal(err)
			}
			for i := c; i < len(reports); i += *clients {
				if err := cl.SendReport(reports[i]); err != nil {
					log.Fatalf("gateway %d: %v", c, err)
				}
			}
			if err := cl.Close(); err != nil {
				log.Fatalf("gateway %d close: %v", c, err)
			}
		}(c)
	}

	// Watch the stream: the histogram is live long before the last
	// report arrives.
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			snap := svc.Snapshot()
			fmt.Printf("  snapshot: %6d/%d reports aggregated, %d batches shuffled, est[0]=%.4f\n",
				snap.Reports, *n, snap.Batches, snap.Estimates[0])
			if snap.Reports >= *n {
				return
			}
		}
	}()

	wg.Wait()
	snap, err := svc.Drain()
	if err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	<-watchDone

	truth := ldp.TrueFrequencies(values, *d)
	fmt.Println("\nvalue   true-freq   estimate")
	for v := 0; v < 8 && v < *d; v++ {
		fmt.Printf("%5d   %9.4f   %8.4f\n", v, truth[v], snap.Estimates[v])
	}
	fmt.Printf("\nMSE over the full domain: %.3e (analytic: %.3e)\n",
		ldp.MSE(truth, snap.Estimates), fo.Variance(*n))
	fmt.Printf("\nper-party costs:\n%s", meter.String())
}
