// Command shuffled runs the shuffle model as a real streaming
// deployment over TCP loopback (Figure 1 of the paper, §III): the
// analysis server hosts the internal/service ingestion tier — batch
// shuffler plus a decrypt/aggregate worker pool — and several
// concurrent collector gateways stream the users' ECIES-encrypted
// reports into it. The live estimate is printed from mid-stream
// Snapshots while ingestion is still running; Drain prints the final
// histogram and the per-party cost account (transport.Meter).
//
// The run is continual: the stream is cut into -epochs collection
// rounds (auto-rotated every n/epochs reports), a budget ledger
// charges each epoch's (eps, delta) against -total-eps under the
// chosen -accountant, and the sealed epochs answer sliding-window
// queries. With -total-eps too small for the epoch count the service
// demonstrates budget exhaustion: it seals what the ledger affords and
// rejects the rest of the stream.
//
// With -data-dir the run is durable: accepted reports are write-ahead
// logged and every rotation writes a checkpoint (fsync cadence chosen
// by -fsync). Pointing -data-dir at a directory that already holds
// state recovers it — sealed epochs, ledger charges, and the open
// epoch's reports come back bit-identical — and the run resumes from
// there instead of re-spending budget (DESIGN.md §8).
//
// Role subcommands grow the binary into the PEOS security tier
// (§VI-A3): `shuffled analyzer`, `shuffled shuffler`, and
// `shuffled client` each run one party of the role-separated cluster
// (internal/cluster) as its own process — see cluster.go in this
// directory for the multi-terminal walkthrough. Without a subcommand
// the binary keeps its original single-node streaming behavior below.
//
// Usage:
//
//	shuffled [-n users] [-d domain] [-eps epsC] [-seed s] [-clients c] [-batch b]
//	         [-epochs e] [-total-eps B] [-accountant naive|advanced] [-window k]
//	         [-data-dir dir] [-fsync always|batch|none]
//	         [-session=false] [-session-batch r] [-max-frame bytes]
//	shuffled analyzer|shuffler|client [role flags; -h lists them]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"shuffledp/internal/amplify"
	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyzer":
			runAnalyzer(os.Args[2:])
			return
		case "shuffler":
			runShuffler(os.Args[2:])
			return
		case "client":
			runClient(os.Args[2:])
			return
		}
	}
	n := flag.Int("n", 20000, "number of users")
	d := flag.Int("d", 64, "domain size")
	epsC := flag.Float64("eps", 1, "per-epoch central privacy budget")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 1, "random seed")
	clients := flag.Int("clients", 8, "concurrent collector connections")
	batch := flag.Int("batch", 512, "shuffle-batch size (the anonymity granularity)")
	epochs := flag.Int("epochs", 3, "collection rounds to cut the stream into")
	totalEps := flag.Float64("total-eps", 0, "total privacy budget across epochs (0: exactly -epochs rounds of -eps)")
	accountant := flag.String("accountant", "naive", "budget composition: naive or advanced")
	window := flag.Int("window", 2, "sliding-window width for the final window query")
	dataDir := flag.String("data-dir", "", "durable state directory (WAL + checkpoints); empty runs in-memory")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always, batch, or none")
	session := flag.Bool("session", true, "gateways speak the session protocol (one handshake, AEAD-sealed batches); false falls back to per-report ECIES frames")
	sessionBatch := flag.Int("session-batch", 0, "reports per session frame (0: the service default)")
	maxFrame := flag.Int("max-frame", 0, "per-connection frame cap in bytes; oversized frames kick the connection (0: the service default)")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}
	if *epochs < 1 {
		*epochs = 1
	}

	values := dataset.Synthetic("demo", *n, *d, 1.3, *seed).Values

	// Parameterize SOLH for the per-epoch central budget.
	m := amplify.BlanketM(*epsC, *n, *delta)
	dPrime := amplify.OptimalDPrime(m, *d)
	epsL, err := amplify.LocalEpsilonSOLH(*epsC, dPrime, *n, *delta)
	if err != nil {
		log.Fatal(err)
	}
	fo := ldp.NewSOLH(*d, dPrime, epsL)
	fmt.Printf("SOLH(epsL=%.3f, d'=%d) -> (%.2f, %.0e)-DP per epoch after shuffling\n",
		epsL, dPrime, *epsC, *delta)

	// The cross-epoch ledger: by default budget exactly -epochs rounds.
	if *totalEps <= 0 {
		*totalEps = *epsC * float64(*epochs)
	}
	var acct budget.Accountant = budget.Naive{}
	totalDelta := *delta * 1e2
	if *accountant == "advanced" {
		acct = budget.Advanced{Slack: totalDelta / 2}
	}
	ledger, err := budget.NewLedger(
		composition.Guarantee{Eps: *totalEps, Delta: totalDelta},
		composition.Guarantee{Eps: *epsC, Delta: *delta},
		acct,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget ledger: total eps=%.2f, per-epoch eps=%.2f, %s accounting admits %d epochs\n",
		*totalEps, *epsC, ledger.AccountantName(), ledger.MaxEpochs())

	key, err := ecies.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}

	syncPolicy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	var meter transport.Meter
	cfg := service.Config{
		FO:           fo,
		Key:          key,
		BatchSize:    *batch,
		ShuffleSeed:  *seed + 1,
		Meter:        &meter,
		Ledger:       ledger,
		EpochReports: (*n + *epochs - 1) / *epochs,
		DataDir:      *dataDir,
		Sync:         syncPolicy,
		MaxFrame:     *maxFrame,
	}
	svc, err := service.New(cfg)
	if *dataDir != "" && errors.Is(err, store.ErrExists) {
		// The directory holds a previous run: recover it instead of
		// starting over (Recover restores the ledger to its recorded
		// charge count, so the New attempt's epoch-0 charge above is
		// not double-spent).
		svc, err = service.Recover(cfg)
		if err == nil {
			snap := svc.Snapshot()
			fmt.Printf("recovered durable state from %s: epoch %d open, %d reports durable, %d epochs sealed\n",
				*dataDir, snap.Epoch, snap.Received, len(svc.History()))
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		fmt.Printf("durable: WAL + checkpoints under %s (fsync=%s)\n", *dataDir, syncPolicy)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	wire := "session"
	if !*session {
		wire = "legacy per-report ECIES"
	}
	fmt.Printf("ingestion service listening on %s (%d gateways, wire=%s, batch=%d, rotate every %d reports)\n",
		ln.Addr(), *clients, wire, *batch, (*n+*epochs-1)/(*epochs))
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(ln) }()

	// Randomize on the users' side of the ledger. The shard substreams
	// make the report multiset a pure function of -seed, so the all-time
	// histogram is bit-identical to netproto.RunPipeline at this seed, no
	// matter how the gateways interleave or the epochs cut (DESIGN.md §6).
	var reports []ldp.Report
	meter.Track(service.PartyUsers, func() {
		reports = ldp.RandomizeParallel(fo, values, *seed, 0)
	})

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			var cl *service.Client
			if *session {
				cl, err = service.NewSessionClient(fo, key.Public(), nil, conn, *sessionBatch)
			} else {
				cl, err = service.NewClient(fo, key.Public(), nil, conn)
			}
			if err != nil {
				log.Fatal(err)
			}
			for i := c; i < len(reports); i += *clients {
				if err := cl.SendReport(reports[i]); err != nil {
					log.Fatalf("gateway %d: %v", c, err)
				}
			}
			if err := cl.Close(); err != nil {
				log.Fatalf("gateway %d close: %v", c, err)
			}
		}(c)
	}

	// Watch the stream: the histogram is live long before the last
	// report arrives, and the open epoch advances as the rotator cuts.
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			snap := svc.Snapshot()
			fmt.Printf("  snapshot: epoch %d, %6d frames received, %d batches shuffled, est[0]=%.4f\n",
				snap.Epoch, snap.Received, snap.Batches, snap.Estimates[0])
			// Received/Late/Rejected are disjoint, so their sum is every
			// frame the readers have seen.
			if snap.Received+snap.Late+snap.Rejected >= int64(*n) {
				return
			}
		}
	}()

	wg.Wait()
	// The gateways have written and closed, but a batched session client
	// finishes so fast its connection may still sit in the listener
	// backlog, not yet accepted. Drain's cutoff would discard it, so wait
	// until the service accounts for every frame (the watcher's exit
	// condition) before draining.
	<-watchDone
	snap, err := svc.Drain()
	if err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsealed epochs:")
	hist := svc.History()
	for _, es := range hist {
		fmt.Printf("  epoch %d: %6d reports, %4d batches, est[0]=%.4f (charged eps=%.2f)\n",
			es.Epoch, es.Reports, es.Batches, es.Estimates[0], es.Guarantee.Eps)
	}
	if svc.Exhausted() {
		fmt.Printf("budget exhausted: %d reports rejected after the ledger refused epoch %d\n",
			snap.Rejected, svc.Epoch()+1)
	}
	spent := ledger.Spent()
	fmt.Printf("ledger: spent (%.2f, %.0e) of (%.2f, %.0e)\n",
		spent.Eps, spent.Delta, *totalEps, totalDelta)

	k := *window
	if k > len(hist) {
		k = len(hist)
	}
	if win, err := svc.EstimateWindow(k); err == nil {
		fmt.Printf("\nwindow over epochs [%d, %d] (%d reports):\n", win.FromEpoch, win.ToEpoch, win.Reports)
		truth := ldp.TrueFrequencies(values, *d)
		fmt.Println("value   true-freq   window-est   all-time-est")
		for v := 0; v < 8 && v < *d; v++ {
			fmt.Printf("%5d   %9.4f   %10.4f   %12.4f\n", v, truth[v], win.Estimates[v], snap.Estimates[v])
		}
		fmt.Printf("\nall-time MSE over the full domain: %.3e (analytic at n=%d: %.3e)\n",
			ldp.MSE(truth, snap.Estimates), snap.Reports, fo.Variance(snap.Reports))
	} else {
		fmt.Printf("window query: %v\n", err)
	}
	fmt.Printf("\nper-party costs:\n%s", meter.String())
}
