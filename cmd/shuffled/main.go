// Command shuffled runs the basic shuffle model as three real network
// parties over TCP loopback: n simulated user clients, one shuffler,
// and the analysis server (Figure 1 of the paper, §III). Reports are
// ECIES-encrypted end-to-end for the server, so the shuffler only
// breaks linkage; the server only sees the permuted batch.
//
// Usage:
//
//	shuffled [-n users] [-d domain] [-eps epsC] [-seed s]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"

	"shuffledp/internal/amplify"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/netproto"
	"shuffledp/internal/rng"
)

func main() {
	n := flag.Int("n", 20000, "number of users")
	d := flag.Int("d", 64, "domain size")
	epsC := flag.Float64("eps", 1, "central privacy budget")
	delta := flag.Float64("delta", 1e-9, "DP failure probability")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	values := dataset.Synthetic("demo", *n, *d, 1.3, *seed).Values

	// Parameterize SOLH for the target central budget.
	m := amplify.BlanketM(*epsC, *n, *delta)
	dPrime := amplify.OptimalDPrime(m, *d)
	epsL, err := amplify.LocalEpsilonSOLH(*epsC, dPrime, *n, *delta)
	if err != nil {
		log.Fatal(err)
	}
	fo := ldp.NewSOLH(*d, dPrime, epsL)
	fmt.Printf("SOLH(epsL=%.3f, d'=%d) -> (%.2f, %.0e)-DP after shuffling\n",
		epsL, dPrime, *epsC, *delta)

	key, err := ecies.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}

	// Two TCP loopback legs: users -> shuffler, shuffler -> server.
	userLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer userLn.Close()
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer serverLn.Close()
	fmt.Printf("shuffler listening on %s, server on %s\n",
		userLn.Addr(), serverLn.Addr())

	errc := make(chan error, 2)

	// Shuffler.
	go func() {
		in, err := userLn.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer in.Close()
		out, err := net.Dial("tcp", serverLn.Addr().String())
		if err != nil {
			errc <- err
			return
		}
		defer out.Close()
		sh := &netproto.Shuffler{Rand: rng.New(*seed + 1)}
		reports, err := sh.Collect(in, len(values))
		if err != nil {
			errc <- err
			return
		}
		errc <- sh.Forward(out, reports)
	}()

	// Users (one connection carrying all reports, as a collector
	// gateway would).
	go func() {
		conn, err := net.Dial("tcp", userLn.Addr().String())
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		user, err := netproto.NewUser(fo, key.Public(), rng.New(*seed+2))
		if err != nil {
			errc <- err
			return
		}
		for _, v := range values {
			if err := user.Report(conn, v); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()

	// Server (main goroutine).
	conn, err := serverLn.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	server, err := netproto.NewServer(fo, key)
	if err != nil {
		log.Fatal(err)
	}
	est, err := server.Receive(conn, len(values))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
	}

	truth := ldp.TrueFrequencies(values, *d)
	fmt.Println("\nvalue   true-freq   estimate")
	for v := 0; v < 8 && v < *d; v++ {
		fmt.Printf("%5d   %9.4f   %8.4f\n", v, truth[v], est[v])
	}
	fmt.Printf("\nMSE over the full domain: %.3e\n", ldp.MSE(truth, est))
}
