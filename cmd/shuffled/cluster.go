package main

// The role subcommands: `shuffled analyzer|shuffler|client` run ONE
// party of the PEOS security tier (internal/cluster) as its own
// process, so the paper's trust model — distinct machines per role —
// can be stood up for real:
//
//	# terminal 1: the analyzer generates the key pair and drives rounds
//	shuffled analyzer -listen :7900 -shufflers :7901,:7902 -key peos.key \
//	         -d 16 -nr 24 -n 400 -collections 2 -data-dir ./analyzer-state
//
//	# terminals 2, 3: one shuffler each (they only ever see the public key)
//	shuffled shuffler -index 0 -listen :7901 -shufflers :7901,:7902 \
//	         -analyzer :7900 -key peos.key.pub -nr 24
//	shuffled shuffler -index 1 -listen :7902 -shufflers :7901,:7902 \
//	         -analyzer :7900 -key peos.key.pub -nr 24
//
//	# terminal 4: a reporting client per collection round
//	shuffled client -shufflers :7901,:7902 -analyzer :7900 -key peos.key.pub \
//	         -d 16 -n 400 -collection 0
//
// The analyzer writes the private key to -key (0600) and the public
// half to -key.pub on first run and reloads them afterwards, so a
// restarted (recovered) analyzer keeps decrypting the cluster's
// ciphertexts. Oracle parameters (-oracle/-d/-dprime/-epsl) and -nr
// must match across all roles, like the protocol parameters they are.
//
// The analyzer tier can be sharded by domain partition: give every
// role the full shard list and each analyzer process its index —
//
//	shuffled analyzer -analyzers :7900,:7910 -shard 0 ... # coordinator
//	shuffled analyzer -analyzers :7900,:7910 -shard 1 ... # window shard
//	shuffled shuffler -analyzer :7900,:7910 ...
//
// Shard 0 coordinates rounds exactly like the single analyzer (its
// durable state stays byte-identical); higher shards serve their
// domain window passively and exit once -collections windows have
// committed. -partition overrides the even domain split, and a
// restarted shard recovers from its own -data-dir.

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/store"
)

// oracleFlags are the mechanism parameters every role must agree on.
type oracleFlags struct {
	oracle *string
	d      *int
	dPrime *int
	epsL   *float64
}

func addOracleFlags(fs *flag.FlagSet) oracleFlags {
	return oracleFlags{
		oracle: fs.String("oracle", "grr", "frequency oracle: grr or solh"),
		d:      fs.Int("d", 16, "value domain size"),
		dPrime: fs.Int("dprime", 4, "hashed-domain size (solh only)"),
		epsL:   fs.Float64("epsl", 2, "local epsilon of the oracle"),
	}
}

func (of oracleFlags) build() (ldp.FrequencyOracle, error) {
	switch *of.oracle {
	case "grr":
		return ldp.NewGRR(*of.d, *of.epsL), nil
	case "solh":
		return ldp.NewSOLH(*of.d, *of.dPrime, *of.epsL), nil
	}
	return nil, fmt.Errorf("unknown -oracle %q (PEOS runs grr or solh)", *of.oracle)
}

// parseTopology builds the cluster topology from the address flags.
// analyzers is a comma-separated list in shard order; a single address
// is the classic one-analyzer deployment (the cluster package treats a
// 1-element list and the legacy singular field identically).
func parseTopology(shufflers, analyzers string) (cluster.Topology, error) {
	var topo cluster.Topology
	for _, a := range strings.Split(shufflers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			topo.Shufflers = append(topo.Shufflers, a)
		}
	}
	for _, a := range strings.Split(analyzers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			topo.Analyzers = append(topo.Analyzers, a)
		}
	}
	if len(topo.Shufflers) < 2 {
		return topo, errors.New("-shufflers needs at least 2 comma-separated addresses")
	}
	if len(topo.Analyzers) == 0 {
		return topo, errors.New("at least one analyzer address is required")
	}
	return topo, nil
}

// parsePartition parses `-partition "0,8,16"` into a PartitionPlan:
// the cumulative domain bounds, one boundary per shard edge. Empty
// means the even split (the analyzer derives it from d and the
// topology).
func parsePartition(s string, analyzers, d int) (cluster.PartitionPlan, error) {
	if s == "" {
		return cluster.PartitionPlan{}, nil
	}
	var bounds []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return cluster.PartitionPlan{}, fmt.Errorf("-partition %q: %w", s, err)
		}
		bounds = append(bounds, b)
	}
	p := cluster.PartitionPlan{Analyzers: len(bounds) - 1, Bounds: bounds}
	if p.Analyzers != analyzers {
		return p, fmt.Errorf("-partition %q describes %d shard(s), topology has %d analyzer(s)", s, p.Analyzers, analyzers)
	}
	if err := p.Validate(d); err != nil {
		return p, fmt.Errorf("-partition %q: %w", s, err)
	}
	return p, nil
}

// loadOrCreateKey returns the analyzer's DGK key pair: loaded from
// path when the file exists, freshly generated (and persisted, with
// the public half next to it as path+".pub") otherwise.
func loadOrCreateKey(path string, keyBits int) (*ahe.DGKPrivateKey, error) {
	if blob, err := os.ReadFile(path); err == nil {
		priv, err := ahe.UnmarshalDGKPrivateKey(blob)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		fmt.Printf("loaded DGK key pair from %s\n", path)
		return priv, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	fmt.Printf("generating DGK-%d key pair...\n", keyBits)
	priv, err := ahe.GenerateDGK(keyBits, 64)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, ahe.MarshalDGKPrivateKey(priv), 0o600); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path+".pub", ahe.MarshalDGKPublicKey(&priv.DGKPublicKey), 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s (private, 0600) and %s.pub (distribute to shufflers and clients)\n", path, path)
	return priv, nil
}

func loadPublicKey(path string) (ahe.PublicKey, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pub, err := ahe.UnmarshalDGKPublicKey(blob)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return pub, nil
}

// runAnalyzer is the `shuffled analyzer` subcommand.
func runAnalyzer(args []string) {
	fs := flag.NewFlagSet("shuffled analyzer", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7900", "analyzer listen address")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer shard addresses, in shard order (empty = single analyzer at -listen)")
	shard := fs.Int("shard", 0, "this analyzer's shard index into -analyzers (0 = coordinator)")
	partition := fs.String("partition", "", "comma-separated cumulative domain bounds, e.g. 0,8,16 (empty = even split)")
	shufflers := fs.String("shufflers", "", "comma-separated shuffler addresses, in role order")
	nr := fs.Int("nr", 24, "joint fake reports per collection")
	keyPath := fs.String("key", "peos.key", "DGK private-key file (created on first run)")
	keyBits := fs.Int("keybits", 1024, "DGK modulus bits when generating (paper deploys 3072)")
	n := fs.Int("n", 400, "users per collection round")
	collections := fs.Int("collections", 1, "collection rounds to drive")
	dataDir := fs.String("data-dir", "", "durable state directory (WAL + checkpoints); empty runs in-memory")
	fsync := fs.String("fsync", "batch", "WAL fsync policy: always, batch, or none")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-phase collect timeout")
	retries := fs.Int("retry-attempts", 1, "attempts per collection round (>1 enables abort-and-retry self-healing)")
	backoff := fs.Duration("retry-backoff", 50*time.Millisecond, "base backoff between round retries (exponential, jittered)")
	maxBackoff := fs.Duration("retry-max-backoff", 2*time.Second, "cap on a single round-retry backoff sleep")
	hello := fs.Duration("hello-timeout", cluster.DefaultHelloTimeout, "drop inbound connections silent past this before their hello")
	of := addOracleFlags(fs)
	fs.Parse(args)

	fo, err := of.build()
	if err != nil {
		log.Fatal(err)
	}
	// With -analyzers the node serves one shard of the list; -listen,
	// when given explicitly, overrides this shard's entry (mirroring the
	// shuffler's -listen). Without -analyzers it is the classic single
	// analyzer at -listen.
	analyzerList := *analyzers
	if analyzerList == "" {
		analyzerList = *listen
	}
	topo, err := parseTopology(*shufflers, analyzerList)
	if err != nil {
		log.Fatal(err)
	}
	if *shard < 0 || *shard >= topo.A() {
		log.Fatalf("-shard %d out of range: -analyzers lists %d shard(s)", *shard, topo.A())
	}
	if *analyzers != "" {
		listenSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "listen" {
				listenSet = true
			}
		})
		if listenSet {
			topo.Analyzers[*shard] = *listen
		}
	}
	plan, err := parsePartition(*partition, topo.A(), fo.Domain())
	if err != nil {
		log.Fatal(err)
	}
	priv, err := loadOrCreateKey(*keyPath, *keyBits)
	if err != nil {
		log.Fatal(err)
	}
	syncPolicy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.AnalyzerConfig{
		Topology:       topo,
		FO:             fo,
		NR:             *nr,
		Priv:           priv,
		Shard:          *shard,
		Plan:           plan,
		DataDir:        *dataDir,
		Sync:           syncPolicy,
		CollectTimeout: *timeout,
		HelloTimeout:   *hello,
		Retry: cluster.RetryPolicy{
			Attempts:    *retries,
			BaseBackoff: *backoff,
			MaxBackoff:  *maxBackoff,
		},
	}
	a, err := cluster.NewAnalyzer(cfg)
	if *dataDir != "" && errors.Is(err, store.ErrExists) {
		a, err = cluster.RecoverAnalyzer(cfg)
		if err == nil {
			reals, fakes := a.Totals()
			fmt.Printf("recovered durable state from %s: %d collections sealed (%d reports, %d fakes)\n",
				*dataDir, a.Collections(), reals, fakes)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// A window shard is passive: the coordinator drives the rounds and
	// two-phase-commits this node's windows. It serves until the target
	// number of windows has committed, then exits — symmetric with the
	// coordinator's loop below, so a sharded deployment winds down
	// cleanly when the rounds are done.
	if *shard != 0 {
		fmt.Printf("analyzer shard %d/%d listening on %s (coordinator %s)\n",
			*shard, topo.A(), a.Addr(), topo.Coordinator())
		for a.Collections() < *collections {
			time.Sleep(100 * time.Millisecond)
		}
		reals, _ := a.Totals()
		fmt.Printf("shard %d done: %d windows committed, %d words revealed\n", *shard, a.Collections(), reals)
		return
	}
	fmt.Printf("analyzer listening on %s, waiting for %d shufflers\n", a.Addr(), topo.R())

	for a.Collections() < *collections {
		c := a.Collections()
		fmt.Printf("collection %d: sealing at n=%d (flush your client first)\n", c, *n)
		col, err := a.Collect(*n)
		if err != nil {
			log.Fatalf("collection %d: %v", c, err)
		}
		top := 8
		if top > len(col.Estimates) {
			top = len(col.Estimates)
		}
		fmt.Printf("collection %d sealed: %d users + %d fakes, est[:%d] = %.4f\n",
			col.Collection, col.Reports, col.Fakes, top, col.Estimates[:top])
	}
	reals, fakes := a.Totals()
	fmt.Printf("done: %d collections, %d reports, %d fakes; cumulative est[0] = %.4f\n",
		a.Collections(), reals, fakes, a.Estimates()[0])
}

// runShuffler is the `shuffled shuffler` subcommand.
func runShuffler(args []string) {
	fs := flag.NewFlagSet("shuffled shuffler", flag.ExitOnError)
	index := fs.Int("index", 0, "this shuffler's role id in [0, R)")
	listen := fs.String("listen", "", "listen address (defaults to the -shufflers entry for -index)")
	shufflers := fs.String("shufflers", "", "comma-separated shuffler addresses, in role order")
	analyzer := fs.String("analyzer", "127.0.0.1:7900", "analyzer address, or comma-separated shard addresses in shard order")
	nr := fs.Int("nr", 24, "joint fake reports per collection")
	keyPath := fs.String("key", "peos.key.pub", "analyzer's DGK public-key file")
	idle := fs.Duration("idle-timeout", 2*time.Minute, "drop client connections silent past this (0 = never)")
	sealTimeout := fs.Duration("seal-timeout", 5*time.Minute, "per-collection wait and peer I/O bound (0 = none)")
	phaseTimeout := fs.Duration("phase-timeout", 0, "bound on each oblivious-shuffle phase (0 = seal timeout only)")
	hello := fs.Duration("hello-timeout", cluster.DefaultHelloTimeout, "drop inbound connections silent past this before their hello")
	fast := fs.Bool("fast-shuffle", false, "skip ciphertext rerandomization (Table III cost model; weakens unlinkability)")
	workers := fs.Int("shuffler-workers", 0, "goroutines for this node's shuffle crypto passes (<=1 = serial)")
	chunkWords := fs.Int("chunk-words", 0, "stream outbound shuffle vectors in windows of this many elements (0 = one frame)")
	fs.Parse(args)

	topo, err := parseTopology(*shufflers, *analyzer)
	if err != nil {
		log.Fatal(err)
	}
	if *listen != "" && *index >= 0 && *index < len(topo.Shufflers) {
		topo.Shufflers[*index] = *listen
	}
	pub, err := loadPublicKey(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	sh, err := cluster.NewShuffler(cluster.ShufflerConfig{
		Index:        *index,
		Topology:     topo,
		NR:           *nr,
		Pub:          pub,
		Source:       secretshare.Crypto,
		FastShuffle:  *fast,
		IdleTimeout:  *idle,
		SealTimeout:  *sealTimeout,
		PhaseTimeout: *phaseTimeout,
		HelloTimeout: *hello,
		Workers:      *workers,
		ChunkWords:   *chunkWords,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shuffler %d listening on %s (%d analyzer shard(s), coordinator %s, %d fakes/round)\n",
		*index, sh.Addr(), topo.A(), topo.Coordinator(), *nr)
	if err := sh.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyzer closed the control link; shuffler exiting")
}

// runClient is the `shuffled client` subcommand: a collector gateway
// reporting one synthetic population into one collection round.
func runClient(args []string) {
	fs := flag.NewFlagSet("shuffled client", flag.ExitOnError)
	shufflers := fs.String("shufflers", "", "comma-separated shuffler addresses, in role order")
	analyzer := fs.String("analyzer", "127.0.0.1:7900", "analyzer address(es), comma-separated (topology completeness only)")
	keyPath := fs.String("key", "peos.key.pub", "analyzer's DGK public-key file")
	n := fs.Int("n", 400, "users to report (indices base..base+n-1)")
	base := fs.Int("base", 0, "first user index this client covers")
	collection := fs.Int("collection", 0, "collection round to report into")
	seed := fs.Uint64("seed", 1, "seed for the synthetic population and LDP randomness")
	retries := fs.Int("retry-attempts", 1, "attempts per shuffler connection (>1 enables reconnect-and-resubmit)")
	backoff := fs.Duration("retry-backoff", 50*time.Millisecond, "base backoff between reconnects (exponential, jittered)")
	of := addOracleFlags(fs)
	fs.Parse(args)

	fo, err := of.build()
	if err != nil {
		log.Fatal(err)
	}
	topo, err := parseTopology(*shufflers, *analyzer)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := loadPublicKey(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	values := dataset.Synthetic("demo", *n, fo.Domain(), 1.3, *seed).Values
	cl, err := cluster.NewClient(cluster.ClientConfig{
		Topology: topo,
		FO:       fo,
		Pub:      pub,
		Source:   secretshare.Crypto,
		Retry:    cluster.RetryPolicy{Attempts: *retries, BaseBackoff: *backoff},
	})
	if err != nil {
		log.Fatal(err)
	}
	cl.SetCollection(*collection)
	// One seeded stream for the demo population; real deployments give
	// every user device its own generator.
	if err := cl.SendValues(*base, values, rng.New(*seed+uint64(*collection))); err != nil {
		log.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reported %d users (indices %d..%d) into collection %d across %d shufflers\n",
		*n, *base, *base+*n-1, *collection, topo.R())
}
