package main

// End-to-end test of the role subcommands: the analyzer, two
// shufflers, and a client run as goroutines exactly as four terminals
// would run the processes, including key generation and distribution
// through the -key files and a second, recovered analyzer run over the
// same -data-dir. Failures inside a role exit the test binary (the
// subcommands are mains); the assertions here are liveness and the
// durable round count.

import (
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"shuffledp/internal/ahe"
)

// freeAddrs reserves n distinct loopback addresses. The listeners are
// closed again so the roles can bind them — the tiny reuse window is
// fine for a test.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func waitFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never appeared", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRoleSubcommandsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "peos.key")
	dataDir := filepath.Join(dir, "state")
	addrs := freeAddrs(t, 3)
	analyzerAddr, sh0Addr, sh1Addr := addrs[0], addrs[1], addrs[2]
	shufflers := sh0Addr + "," + sh1Addr

	runRound := func(collections, clientCollection int) {
		analyzerDone := make(chan struct{})
		go func() {
			defer close(analyzerDone)
			runAnalyzer([]string{
				"-listen", analyzerAddr, "-shufflers", shufflers,
				"-key", keyPath, "-keybits", "512",
				"-oracle", "grr", "-d", "8", "-nr", "6",
				"-n", "80", "-collections", strconv.Itoa(collections),
				"-data-dir", dataDir, "-fsync", "always",
				"-timeout", "30s",
			})
		}()
		waitFile(t, keyPath+".pub")
		shufflerDone := make(chan struct{}, 2)
		for _, args := range [][]string{
			// Index 0 exercises the explicit -listen override.
			{"-index", "0", "-listen", sh0Addr, "-shufflers", shufflers, "-analyzer", analyzerAddr,
				"-key", keyPath + ".pub", "-nr", "6", "-seal-timeout", "30s"},
			{"-index", "1", "-shufflers", shufflers, "-analyzer", analyzerAddr,
				"-key", keyPath + ".pub", "-nr", "6", "-seal-timeout", "30s"},
		} {
			args := args
			go func() {
				runShuffler(args)
				shufflerDone <- struct{}{}
			}()
		}
		runClient([]string{
			"-shufflers", shufflers, "-analyzer", analyzerAddr,
			"-key", keyPath + ".pub", "-oracle", "grr", "-d", "8",
			"-n", "80", "-collection", strconv.Itoa(clientCollection), "-seed", "5",
		})
		for _, ch := range []<-chan struct{}{analyzerDone, shufflerDone, shufflerDone} {
			select {
			case <-ch:
			case <-time.After(60 * time.Second):
				t.Fatal("a role did not finish")
			}
		}
	}

	// Round 0: fresh key pair, fresh durable state.
	runRound(1, 0)
	// Round 1: the analyzer reloads the key file and RECOVERS the data
	// directory (collection 0 already sealed), then drives collection 1.
	runRound(2, 1)

	// The persisted private key must still parse and decrypt.
	blob, err := os.ReadFile(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := ahe.UnmarshalDGKPrivateKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	c, err := priv.Encrypt(42)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := priv.Decrypt(c); m != 42 {
		t.Fatalf("persisted key decrypts %d", m)
	}
}

func TestParseTopologyAndOracleFlags(t *testing.T) {
	if _, err := parseTopology("a", "c"); err == nil {
		t.Fatal("accepted a single shuffler address")
	}
	if _, err := parseTopology("a,b", " ,"); err == nil {
		t.Fatal("accepted an empty analyzer list")
	}
	// A single analyzer address is the legacy deployment: one entry in
	// the shard list, which the cluster package treats identically to
	// the old singular field.
	topo, err := parseTopology(" a , b ,c", "anlz")
	if err != nil {
		t.Fatal(err)
	}
	if topo.R() != 3 || topo.Shufflers[2] != "c" || topo.A() != 1 || topo.Coordinator() != "anlz" {
		t.Fatalf("parsed %+v", topo)
	}
	topo, err = parseTopology("a,b", " x , y ")
	if err != nil {
		t.Fatal(err)
	}
	if topo.A() != 2 || topo.Analyzers[1] != "y" || topo.Coordinator() != "x" {
		t.Fatalf("parsed shard list %+v", topo.Analyzers)
	}
}

func TestParsePartition(t *testing.T) {
	if p, err := parsePartition("", 3, 8); err != nil || p.Analyzers != 0 {
		t.Fatalf("empty -partition: %+v, %v", p, err)
	}
	p, err := parsePartition("0, 3, 8", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Analyzers != 2 || p.Bounds[1] != 3 {
		t.Fatalf("parsed %+v", p)
	}
	if _, err := parsePartition("0,8", 2, 8); err == nil {
		t.Fatal("accepted a plan with the wrong shard count")
	}
	if _, err := parsePartition("0,9,8", 2, 8); err == nil {
		t.Fatal("accepted decreasing bounds")
	}
	if _, err := parsePartition("0,x,8", 2, 8); err == nil {
		t.Fatal("accepted a non-numeric bound")
	}
}

// A sharded deployment through the role subcommands: two analyzer
// processes (coordinator + window shard), two shufflers, one client,
// one round. The shard exits on its own once its window has committed.
func TestRoleSubcommandsShardedRound(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "peos.key")
	addrs := freeAddrs(t, 4)
	coordAddr, shardAddr, sh0Addr, sh1Addr := addrs[0], addrs[1], addrs[2], addrs[3]
	analyzers := coordAddr + "," + shardAddr
	shufflers := sh0Addr + "," + sh1Addr

	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		runAnalyzer([]string{
			"-analyzers", analyzers, "-shard", "0", "-shufflers", shufflers,
			"-key", keyPath, "-keybits", "512",
			"-oracle", "grr", "-d", "8", "-nr", "6", "-partition", "0,4,8",
			"-n", "80", "-collections", "1", "-timeout", "30s",
		})
	}()
	waitFile(t, keyPath+".pub")
	shardDone := make(chan struct{})
	go func() {
		defer close(shardDone)
		runAnalyzer([]string{
			"-analyzers", analyzers, "-shard", "1", "-shufflers", shufflers,
			"-key", keyPath,
			"-oracle", "grr", "-d", "8", "-nr", "6", "-partition", "0,4,8",
			"-n", "80", "-collections", "1", "-timeout", "30s",
		})
	}()
	shufflerDone := make(chan struct{}, 2)
	for _, args := range [][]string{
		{"-index", "0", "-shufflers", shufflers, "-analyzer", analyzers,
			"-key", keyPath + ".pub", "-nr", "6", "-seal-timeout", "30s"},
		{"-index", "1", "-shufflers", shufflers, "-analyzer", analyzers,
			"-key", keyPath + ".pub", "-nr", "6", "-seal-timeout", "30s"},
	} {
		args := args
		go func() {
			runShuffler(args)
			shufflerDone <- struct{}{}
		}()
	}
	runClient([]string{
		"-shufflers", shufflers, "-analyzer", analyzers,
		"-key", keyPath + ".pub", "-oracle", "grr", "-d", "8",
		"-n", "80", "-collection", "0", "-seed", "5",
	})
	for _, ch := range []<-chan struct{}{coordDone, shardDone, shufflerDone, shufflerDone} {
		select {
		case <-ch:
		case <-time.After(60 * time.Second):
			t.Fatal("a role did not finish")
		}
	}
}
