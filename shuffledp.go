// Package shuffledp is a Go implementation of the shuffle model of
// differential privacy as described in:
//
//	Tianhao Wang, Bolin Ding, Min Xu, Zhicong Huang, Cheng Hong,
//	Jingren Zhou, Ninghui Li, Somesh Jha.
//	"Improving Utility and Security of the Shuffler-based Differential
//	Privacy." PVLDB 13(13), 2020. arXiv:1908.11515.
//
// It provides the paper's two contributions behind a task-level API:
//
//   - SOLH (Shuffler-Optimal Local Hash), a frequency oracle whose
//     utility in the shuffle model does not degrade with the domain
//     size — see EstimateHistogram.
//   - PEOS (Private Encrypted Oblivious Shuffle), a multi-shuffler
//     protocol that keeps its guarantees under user–server collusion,
//     partial shuffler–server collusion, and data-poisoning by
//     shufflers — see PlanPEOS and RunPEOS.
//
// Everything is implemented from scratch on the Go standard library:
// the LDP frequency-oracle family, privacy-amplification analysis,
// additive secret sharing, DGK/Paillier additively homomorphic
// encryption, hybrid EC onion encryption, the resharing-based oblivious
// shuffle, and the TreeHist succinct-histogram algorithm (see
// FrequentStrings). DESIGN.md maps each subsystem to its package;
// EXPERIMENTS.md records the reproduction of every table and figure in
// the paper's evaluation.
package shuffledp

import (
	"errors"
	"fmt"

	"shuffledp/internal/amplify"
	"shuffledp/internal/composition"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/treehist"
)

// MechanismKind selects the frequency oracle used in the shuffle model.
type MechanismKind int

const (
	// Auto picks GRR or SOLH, whichever has lower predicted variance
	// at the target budget (§IV-B3 "Comparison of the Methods").
	Auto MechanismKind = iota
	// GRR forces generalized randomized response.
	GRR
	// SOLH forces the paper's Shuffler-Optimal Local Hash.
	SOLH
)

// String returns the mechanism's short name as used in the paper's
// figures.
func (k MechanismKind) String() string {
	switch k {
	case Auto:
		return "Auto"
	case GRR:
		return "GRR"
	case SOLH:
		return "SOLH"
	default:
		return fmt.Sprintf("MechanismKind(%d)", int(k))
	}
}

// DefaultSeed is the seed substituted when Options.Seed or
// FrequentStringsOptions.Seed is left at zero. Zero is a sentinel for
// "unset" — an explicit Seed of 0 is indistinguishable from the default
// — so callers that need a distinct reproducible run must pass a
// nonzero seed.
const DefaultSeed uint64 = 0x5eed

// shuffleStream is the rng substream id reserved for the report
// permutation. Randomization shards use ids 0, 1, 2, ... (one per
// ldp.ShardSize values), which can never reach it.
const shuffleStream = ^uint64(0)

// Options configures EstimateHistogram.
type Options struct {
	// EpsilonCentral is the (epsC, Delta)-DP guarantee the shuffled
	// output must satisfy against the server.
	EpsilonCentral float64
	// Delta is the DP failure probability (default 1e-9, the paper's
	// setting).
	Delta float64
	// Mechanism picks the oracle (default Auto).
	Mechanism MechanismKind
	// Seed makes the run reproducible. Zero is a sentinel meaning
	// "unset" and selects DefaultSeed; see DefaultSeed for the
	// consequence.
	Seed uint64
	// Concurrency caps the number of worker goroutines used to fan out
	// randomization and aggregation; values < 1 use GOMAXPROCS. For a
	// fixed Seed the result is identical regardless of Concurrency.
	Concurrency int
}

func (o *Options) setDefaults() {
	if o.Delta == 0 {
		o.Delta = 1e-9
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
}

// HistogramResult is the outcome of a shuffle-model estimation.
type HistogramResult struct {
	// Estimates is the unbiased frequency estimate per value.
	Estimates []float64
	// Mechanism is the oracle that was used ("GRR" or "SOLH").
	Mechanism string
	// EpsilonLocal is the local budget each user's report satisfies on
	// its own (protection against everyone, including the shuffler).
	EpsilonLocal float64
	// DPrime is the hashed-domain size (0 for GRR).
	DPrime int
	// PredictedMSE is the analytic expected mean squared error.
	PredictedMSE float64
}

// EstimateHistogram runs the complete shuffle-model pipeline in
// process: parameterize the mechanism for the target central budget
// (inverting Theorem 3 / the GRR bound), randomize every user's value,
// shuffle, and estimate. values must lie in [0, d).
//
// This is the single-shuffler trust model of §III; use RunPEOS for the
// hardened multi-shuffler protocol.
func EstimateHistogram(values []int, d int, opt Options) (*HistogramResult, error) {
	opt.setDefaults()
	n := len(values)
	if n < 2 {
		return nil, errors.New("shuffledp: need at least 2 users")
	}
	if d < 2 {
		return nil, errors.New("shuffledp: domain size must be >= 2")
	}
	fo, err := chooseOracle(opt.Mechanism, opt.EpsilonCentral, opt.Delta, n, d)
	if err != nil {
		return nil, err
	}
	for _, v := range values {
		if v < 0 || v >= d {
			return nil, fmt.Errorf("shuffledp: value %d outside [0, %d)", v, d)
		}
	}
	// Randomization and aggregation fan out over Concurrency workers;
	// shard substreams keep the result a pure function of Seed (see
	// internal/ldp/parallel.go).
	reports := ldp.RandomizeParallel(fo, values, opt.Seed, opt.Concurrency)
	// The shuffle: estimation is order-invariant, but permute anyway so
	// the reports slice faithfully models what the server receives. The
	// permutation has its own substream so it cannot perturb the
	// randomization streams.
	shuf := rng.Substream(opt.Seed, shuffleStream)
	shuf.Shuffle(len(reports), func(i, j int) {
		reports[i], reports[j] = reports[j], reports[i]
	})
	agg := ldp.AggregateParallel(fo, reports, opt.Concurrency)
	res := &HistogramResult{
		Estimates:    agg.Estimates(),
		Mechanism:    fo.Name(),
		EpsilonLocal: fo.EpsilonLocal(),
		PredictedMSE: fo.Variance(n),
	}
	if lh, ok := fo.(*ldp.LocalHash); ok {
		res.DPrime = lh.DPrime()
	}
	return res, nil
}

// chooseOracle implements the §IV-B3 mechanism choice at a target
// central budget.
func chooseOracle(kind MechanismKind, epsC, delta float64, n, d int) (ldp.FrequencyOracle, error) {
	if epsC <= 0 {
		return nil, errors.New("shuffledp: EpsilonCentral must be > 0")
	}
	useGRR := false
	switch kind {
	case GRR:
		useGRR = true
	case SOLH:
	case Auto:
		useGRR = amplify.PreferGRR(epsC, d, n, delta)
	default:
		return nil, fmt.Errorf("shuffledp: unknown mechanism kind %v", kind)
	}
	if useGRR {
		epsL, err := amplify.LocalEpsilonGRR(epsC, d, n, delta)
		if err != nil {
			return nil, fmt.Errorf("shuffledp: %w", err)
		}
		return ldp.NewGRR(d, epsL), nil
	}
	m := amplify.BlanketM(epsC, n, delta)
	dPrime := amplify.OptimalDPrime(m, d)
	epsL, err := amplify.LocalEpsilonSOLH(epsC, dPrime, n, delta)
	if err != nil {
		return nil, fmt.Errorf("shuffledp: %w", err)
	}
	return ldp.NewSOLH(d, dPrime, epsL), nil
}

// AmplifiedEpsilon returns the central (epsC, delta)-DP guarantee that
// shuffling n users' epsL-LDP SOLH reports with hashed-domain size
// dPrime provides (Theorem 3). Use dPrime = d for GRR.
func AmplifiedEpsilon(epsL float64, dPrime, n int, delta float64) float64 {
	return amplify.CentralEpsilonSOLH(epsL, dPrime, n, delta)
}

// LocalEpsilonFor inverts Theorem 3: the local budget that achieves the
// target central budget, with the variance-optimal d'.
func LocalEpsilonFor(epsC float64, d, n int, delta float64) (epsL float64, dPrime int, err error) {
	m := amplify.BlanketM(epsC, n, delta)
	dPrime = amplify.OptimalDPrime(m, d)
	epsL, err = amplify.LocalEpsilonSOLH(epsC, dPrime, n, delta)
	return epsL, dPrime, err
}

// FrequentStringsOptions configures FrequentStrings.
type FrequentStringsOptions struct {
	// K is how many frequent strings to find (default 32).
	K int
	// RoundBits is the prefix-tree fan-out per round (default 8).
	RoundBits int
	// EpsilonCentral, Delta: the overall privacy budget, split across
	// rounds (defaults 1.0 and 1e-9).
	EpsilonCentral float64
	Delta          float64
	// Seed for reproducibility. Zero is a sentinel meaning "unset" and
	// selects DefaultSeed (the same constant EstimateHistogram uses).
	Seed uint64
	// Concurrency caps the per-round worker fan-out; values < 1 use
	// GOMAXPROCS. For a fixed Seed the result is identical regardless
	// of Concurrency.
	Concurrency int
}

// FrequentStrings finds the most frequent `bits`-bit strings among the
// users' values using TreeHist (§VII-C) with the SOLH frequency oracle
// in the shuffle model: all users participate in every round and the
// total budget is split across rounds by the better of basic and
// advanced composition (§V-B's "one can utilize composition theorems").
func FrequentStrings(values []uint64, bits int, opt FrequentStringsOptions) ([]uint64, error) {
	if opt.K == 0 {
		opt.K = 32
	}
	if opt.RoundBits == 0 {
		opt.RoundBits = 8
	}
	if opt.EpsilonCentral == 0 {
		opt.EpsilonCentral = 1
	}
	if opt.Delta == 0 {
		opt.Delta = 1e-9
	}
	if opt.Seed == 0 {
		opt.Seed = DefaultSeed
	}
	if bits%opt.RoundBits != 0 {
		return nil, errors.New("shuffledp: RoundBits must divide bits")
	}
	rounds := bits / opt.RoundBits
	per, err := composition.MaxSplit(composition.Guarantee{
		Eps:   opt.EpsilonCentral,
		Delta: opt.Delta,
	}, rounds)
	if err != nil {
		return nil, fmt.Errorf("shuffledp: %w", err)
	}
	roundEps := per.Eps
	roundDelta := per.Delta
	n := len(values)
	// Each round draws a fresh sub-seed from a master stream (rounds run
	// sequentially, so the derivation order is fixed); within a round the
	// randomization and aggregation fan out over Concurrency workers with
	// the round seed's shard substreams, keeping the output independent
	// of the worker count.
	master := rng.Substream(opt.Seed, 0)
	estimate := func(vals []int, d int) []float64 {
		roundSeed := master.Uint64()
		fo, err := chooseOracle(SOLH, roundEps, roundDelta, n, d)
		if err != nil {
			// Infeasible round budget: no information this round.
			return ldp.BaseEstimates(d)
		}
		return ldp.EstimateParallel(fo, vals, roundSeed, opt.Concurrency)
	}
	return treehist.Run(values, treehist.Config{
		Bits:      bits,
		RoundBits: opt.RoundBits,
		K:         opt.K,
		Estimate:  estimate,
	})
}

// SyntheticDataset generates a Zipf-distributed categorical dataset —
// the stand-in generator used throughout the examples and benchmarks
// (see DESIGN.md §2 for the calibration rationale).
func SyntheticDataset(n, d int, skew float64, seed uint64) []int {
	return dataset.Synthetic("synthetic", n, d, skew, seed).Values
}
