module shuffledp

go 1.24
