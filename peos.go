package shuffledp

import (
	"errors"
	"fmt"

	"shuffledp/internal/ahe"
	"shuffledp/internal/amplify"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// PEOSPlan is a concrete PEOS deployment configuration produced by
// PlanPEOS: the mechanism, its parameters, the fake-report budget, and
// the privacy it achieves against each adversary of §V.
type PEOSPlan struct {
	// Mechanism is "GRR" or "SOLH".
	Mechanism string
	// EpsilonLocal is the users' local budget — the guarantee that
	// survives even if the server corrupts a majority of shufflers
	// (adversary Adv_a).
	EpsilonLocal float64
	// DPrime is the hashed-domain size (the domain size itself for
	// GRR).
	DPrime int
	// FakeReports is n_r, the number of uniform fake reports the
	// shufflers jointly contribute.
	FakeReports int
	// EpsilonServer is the guarantee against the server alone (Adv).
	EpsilonServer float64
	// EpsilonColludingUsers is the guarantee when every other user
	// colludes with the server (Adv_u).
	EpsilonColludingUsers float64
	// PredictedMSE is the analytic expected mean squared error.
	PredictedMSE float64

	d, n  int
	delta float64
}

// PlanPEOS searches for the utility-optimal PEOS configuration meeting
// the three §V adversary budgets (the §VI-D guideline):
//
//	eps1 — against the server (Adv),
//	eps2 — against the server + all other users (Adv_u),
//	eps3 — against the server + a majority of shufflers (Adv_a).
func PlanPEOS(eps1, eps2, eps3 float64, n, d int, delta float64) (*PEOSPlan, error) {
	if delta == 0 {
		delta = 1e-9
	}
	plan, err := amplify.PlanPEOS(amplify.Requirements{
		Eps1: eps1, Eps2: eps2, Eps3: eps3,
		D: d, N: n, Delta: delta,
	})
	if err != nil {
		return nil, fmt.Errorf("shuffledp: %w", err)
	}
	name := "SOLH"
	if plan.UseGRR {
		name = "GRR"
	}
	return &PEOSPlan{
		Mechanism:             name,
		EpsilonLocal:          plan.EpsL,
		DPrime:                plan.DPrime,
		FakeReports:           plan.NR,
		EpsilonServer:         plan.Achieved.EpsC,
		EpsilonColludingUsers: plan.Achieved.EpsS,
		PredictedMSE:          plan.Variance,
		d:                     d,
		n:                     n,
		delta:                 delta,
	}, nil
}

// String renders the plan for operators.
func (p *PEOSPlan) String() string {
	return fmt.Sprintf(
		"PEOS{%s, epsL=%.3f, d'=%d, fakes=%d | Adv: %.3f, Adv_u: %.3f, Adv_a: %.3f | MSE~%.3e}",
		p.Mechanism, p.EpsilonLocal, p.DPrime, p.FakeReports,
		p.EpsilonServer, p.EpsilonColludingUsers, p.EpsilonLocal, p.PredictedMSE)
}

// oracle instantiates the planned frequency oracle.
func (p *PEOSPlan) oracle() ldp.FrequencyOracle {
	if p.Mechanism == "GRR" {
		return ldp.NewGRR(p.d, p.EpsilonLocal)
	}
	return ldp.NewSOLH(p.d, p.DPrime, p.EpsilonLocal)
}

// PEOSResult is the outcome of a PEOS run.
type PEOSResult struct {
	// Estimates is the server's unbiased frequency estimate per value.
	Estimates []float64
	// CostReport summarizes per-party computation and communication.
	CostReport string
}

// PEOSRunConfig tunes RunPEOS.
type PEOSRunConfig struct {
	// Shufflers is r, the number of auxiliary servers (default 3).
	Shufflers int
	// KeyBits sizes the server's DGK modulus (default 1024; the paper
	// deploys 3072).
	KeyBits int
	// Seed drives the *simulation's* randomness. In this in-process
	// run all parties share one seeded source so results are
	// reproducible; a real deployment gives each party crypto/rand
	// (the protocol code itself is agnostic — see
	// internal/secretshare.Crypto).
	Seed uint64
}

// RunPEOS executes the full PEOS protocol (Algorithm 1) in process:
// users secret-share their randomized reports, shufflers add fake
// report shares and run the encrypted oblivious shuffle over real DGK
// ciphertexts, the server decrypts and estimates. values must lie in
// [0, d) used at planning time.
func RunPEOS(plan *PEOSPlan, values []int, cfg PEOSRunConfig) (*PEOSResult, error) {
	if plan == nil {
		return nil, errors.New("shuffledp: nil plan")
	}
	if cfg.Shufflers == 0 {
		cfg.Shufflers = 3
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 1024
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9e05
	}
	key, err := ahe.GenerateDGK(cfg.KeyBits, 64)
	if err != nil {
		return nil, fmt.Errorf("shuffledp: key generation: %w", err)
	}
	var src secretshare.Source = rng.New(cfg.Seed)
	p, err := protocol.NewPEOS(plan.oracle(), cfg.Shufflers, plan.FakeReports, key, src)
	if err != nil {
		return nil, err
	}
	res, err := p.Run(values, rng.New(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	return &PEOSResult{
		Estimates:  res.Estimates,
		CostReport: res.Meter.String(),
	}, nil
}
